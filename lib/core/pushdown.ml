open Aldsp_xml
open Aldsp_relational
module C = Cexpr
module Sql = Sql_ast

(* ------------------------------------------------------------------ *)
(* State: fresh aliases, column names, variables                       *)

type state = {
  registry : Metadata.t;
  counter : int ref;
}

let fresh st prefix =
  incr st.counter;
  Printf.sprintf "%s%d" prefix !(st.counter)

let fresh_var st base = fresh st (base ^ "%")

(* ------------------------------------------------------------------ *)
(* Scan metadata                                                       *)

type scan_info = {
  si_db : Database.t;
  si_table : string;
  si_row_name : Qname.t;
  si_columns : (string * Atomic.atomic_type * bool) list;  (* name, ty, nullable *)
}

let scan_of_call st fn arity =
  match Metadata.resolve_call st.registry fn arity with
  | Some { Metadata.fd_impl = Metadata.External (Metadata.Relational_table
             { db; table; row_name }); _ } -> (
    match Database.find_table db table with
    | Error _ -> None
    | Ok t ->
      Some
        { si_db = db;
          si_table = table;
          si_row_name = row_name;
          si_columns =
            List.map
              (fun c ->
                ( c.Table.col_name,
                  Table.atomic_type_of_sql c.Table.col_type,
                  c.Table.nullable ))
              t.Table.columns })
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Row-variable tracking: which let-variables hold reconstructed rows   *)

type row_binding = {
  rb_var : C.var;
  rb_cols : (string * C.var * Atomic.atomic_type * bool) list;
      (* column, bind var, type, nullable *)
  rb_row_name : Qname.t;
}

let reconstruction rb =
  C.Elem
    { name = rb.rb_row_name;
      optional = false;
      attrs = [];
      content =
        C.seq
          (List.map
             (fun (col, bv, _, nullable) ->
               C.Elem
                 { name = Qname.local col;
                   optional = nullable;
                   attrs = [];
                   content = C.Var bv })
             rb.rb_cols) }

(* Resolve field navigation through row variables to the column binds. *)
let resolve_fields rows expr =
  let find_row v = List.find_opt (fun rb -> rb.rb_var = v) rows in
  let find_col rb name =
    List.find_opt (fun (col, _, _, _) -> String.equal col name.Qname.local) rb.rb_cols
  in
  let rec go e =
    match e with
    | C.Data (C.Child (C.Var v, name)) -> (
      match find_row v with
      | Some rb -> (
        match find_col rb name with
        | Some (_, bv, _, _) -> C.Var bv
        | None -> C.Empty)
      | None -> C.map_children go e)
    | C.Child (C.Var v, name) -> (
      match find_row v with
      | Some rb -> (
        match find_col rb name with
        | Some (col, bv, _, nullable) ->
          C.Elem
            { name = Qname.local col;
              optional = nullable;
              attrs = [];
              content = C.Var bv }
        | None -> C.Empty)
      | None -> C.map_children go e)
    | e -> C.map_children go e
  in
  go expr

(* ------------------------------------------------------------------ *)
(* Translation of core expressions to SQL                              *)

type sql_env = {
  (* bind variable -> (alias-qualified column, type) *)
  cols : (C.var * (Sql.expr * Atomic.atomic_type)) list;
  (* variables that cannot appear in parameter expressions: everything
     bound by the clause list under translation *)
  blocked : C.var list;
  caps : Sql_print.capabilities;
  st : state;
  db : Database.t;
  params : C.t list ref;  (* accumulated parameter expressions *)
  param_base : int;  (* params already present in the select *)
}

exception Not_pushable

let unwrap_ebv = function C.Ebv e -> e | e -> e

let rec strip_typematch = function
  | C.Typematch (e, _) | C.Data e -> strip_typematch e
  | e -> e

let comparison_op = function
  | C.V_eq | C.G_eq -> Some Sql.Eq
  | C.V_ne | C.G_ne -> Some Sql.Neq
  | C.V_lt | C.G_lt -> Some Sql.Lt
  | C.V_le | C.G_le -> Some Sql.Le
  | C.V_gt | C.G_gt -> Some Sql.Gt
  | C.V_ge | C.G_ge -> Some Sql.Ge
  | _ -> None

let arith_op = function
  | C.Add -> Some Sql.Add
  | C.Sub -> Some Sql.Sub
  | C.Mul -> Some Sql.Mul
  | C.Div -> Some Sql.Div
  | _ -> None

let sql_of_atomic = function
  | Atomic.Integer i -> Sql_value.Int i
  | Atomic.Decimal f | Atomic.Double f -> Sql_value.Float f
  | Atomic.String s | Atomic.Untyped s -> Sql_value.Str s
  | Atomic.Boolean b -> Sql_value.Bool b
  | Atomic.Date d -> Sql_value.Timestamp (Atomic.epoch_of_date d)
  | Atomic.Date_time f -> Sql_value.Timestamp f

let make_param env e =
  (* evaluate in the middleware, bind as a SQL parameter — allowed only
     when the expression does not depend on region-bound variables *)
  let fv = C.free_vars e () in
  if List.exists (fun v -> Hashtbl.mem fv v) env.blocked then
    raise Not_pushable;
  env.params := !(env.params) @ [ e ];
  Sql.Param (env.param_base + List.length !(env.params))

let rec translate env (e : C.t) : Sql.expr =
  match unwrap_ebv e with
  | C.Var v -> (
    match List.assoc_opt v env.cols with
    | Some (col, _) -> col
    | None -> make_param env e)
  | C.Data inner -> translate env inner
  | C.Typematch (inner, _)
    when (match strip_typematch inner with
         | C.Var v -> List.mem_assoc v env.cols
         | _ -> false) ->
    (* a typematch over a region column is enforced by the column's SQL
       type; drop it inside the pushed predicate *)
    translate env (strip_typematch inner)
  | C.Const a -> Sql.Lit (sql_of_atomic a)
  | C.Empty -> Sql.Lit Sql_value.Null
  | C.Binop (op, a, b) -> (
    match comparison_op op with
    | Some sql_op -> Sql.Binop (sql_op, translate env a, translate env b)
    | None -> (
      match op with
      | C.And ->
        Sql.Binop (Sql.And, translate env a, translate env b)
      | C.Or -> Sql.Binop (Sql.Or, translate env a, translate env b)
      | C.Add | C.Sub | C.Mul | C.Div ->
        let sql_op = Option.get (arith_op op) in
        Sql.Binop (sql_op, translate env a, translate env b)
      | _ -> make_param env e))
  | C.If { cond; then_; else_ } ->
    if not env.caps.Sql_print.supports_case then make_param env e
    else
      Sql.Case ([ (translate env cond, translate env then_) ],
                Some (translate env else_))
  | C.Call { fn; args } -> translate_call env e fn args
  | C.Quantified { universal = false; var; source; pred } ->
    translate_exists env e var source pred
  | C.Cast (inner, _) -> translate env inner
  | e -> make_param env e

and translate_call env whole fn args =
  if Qname.equal fn (Names.fn "not") then
    match args with
    | [ a ] -> Sql.Not (translate env a)
    | _ -> raise Not_pushable
  else if Qname.equal fn (Names.fn "exists") || Qname.equal fn (Names.fn "empty")
  then
    match args with
    | [ C.Flwor _ ] -> (
      match translate_flwor_exists env (List.hd args) with
      | Some sub ->
        if Qname.equal fn (Names.fn "exists") then Sql.Exists sub
        else Sql.Not_exists sub
      | None -> make_param env whole)
    | _ -> make_param env whole
  else if Qname.equal fn (Names.fn "concat") then begin
    if not env.caps.Sql_print.supports_string_concat then make_param env whole
    else
      match args with
      | [] -> raise Not_pushable
      | first :: rest ->
        List.fold_left
          (fun acc a -> Sql.Binop (Sql.Concat, acc, translate env a))
          (translate env first) rest
  end
  else
    match Fn_lib.find fn (List.length args) with
    | Some { Fn_lib.translation = Fn_lib.Sql_function f; _ } ->
      Sql.Func (f, List.map (translate env) args)
    | _ -> make_param env whole

(* some $x in TABLE() satisfies pred ~> EXISTS(SELECT 1 FROM ...) *)
and translate_exists env whole var source pred =
  match source with
  | C.Call { fn; args = [] } -> (
    match scan_of_call env.st fn 0 with
    | Some si when si.si_db == env.db ->
      let alias = fresh env.st "t" in
      let sub_cols =
        List.map
          (fun (col, ty, _) ->
            let bv = var ^ "/" ^ col in
            (bv, (Sql.col alias col, ty)))
          si.si_columns
      in
      (* navigation through the quantified row variable resolves to the
         subquery's columns *)
      let rewritten =
        let rec fix e =
          match e with
          | C.Data (C.Child (C.Var v, name)) when v = var ->
            C.Var (var ^ "/" ^ name.Qname.local)
          | C.Child (C.Var v, name) when v = var ->
            C.Var (var ^ "/" ^ name.Qname.local)
          | e -> C.map_children fix e
        in
        fix pred
      in
      let env' =
        { env with cols = sub_cols @ env.cols; blocked = var :: env.blocked }
      in
      let where = translate env' rewritten in
      Sql.Exists
        (Sql.select
           ~projections:[ (Sql.Lit (Sql_value.Int 1), "one") ]
           ~where
           (Sql.Table { table = si.si_table; alias }))
    | _ -> make_param env whole)
  | _ -> make_param env whole

and translate_flwor_exists env flwor =
  match flwor with
  | C.Flwor { clauses = [ C.For { var = _; source = C.Call { fn; args = [] } } ]
            ; return_ = _ } -> (
    match scan_of_call env.st fn 0 with
    | Some si when si.si_db == env.db ->
      let alias = fresh env.st "t" in
      Some
        (Sql.select
           ~projections:[ (Sql.Lit (Sql_value.Int 1), "one") ]
           (Sql.Table { table = si.si_table; alias }))
    | _ -> None)
  | C.Flwor
      { clauses =
          [ C.For { var; source = C.Call { fn; args = [] } }; C.Where w ];
        return_ = _ } -> (
    match scan_of_call env.st fn 0 with
    | Some si when si.si_db == env.db -> (
      let alias = fresh env.st "t" in
      let sub_cols =
        List.map
          (fun (col, ty, _) -> (var ^ "/" ^ col, (Sql.col alias col, ty)))
          si.si_columns
      in
      let rec fix e =
        match e with
        | C.Data (C.Child (C.Var v, name)) when v = var ->
          C.Var (var ^ "/" ^ name.Qname.local)
        | C.Child (C.Var v, name) when v = var ->
          C.Var (var ^ "/" ^ name.Qname.local)
        | e -> C.map_children fix e
      in
      let env' =
        { env with cols = sub_cols @ env.cols; blocked = var :: env.blocked }
      in
      match translate env' (fix w) with
      | where ->
        Some
          (Sql.select
             ~projections:[ (Sql.Lit (Sql_value.Int 1), "one") ]
             ~where
             (Sql.Table { table = si.si_table; alias })))
    | _ -> None)
  | _ -> None

let try_translate env e =
  let saved = !(env.params) in
  match translate env e with
  | sql -> Some sql
  | exception Not_pushable ->
    env.params := saved;
    None

(* ------------------------------------------------------------------ *)
(* Phase A: scan conversion                                            *)

let convert_scan st (si : scan_info) var =
  let alias = fresh st "t" in
  let cols =
    List.map
      (fun (col, ty, nullable) ->
        let bv = fresh_var st (var ^ "." ^ col) in
        let out = fresh st "c" in
        (col, out, bv, ty, nullable))
      si.si_columns
  in
  let select =
    Sql.select
      ~projections:
        (List.map (fun (col, out, _, _, _) -> (Sql.col alias col, out)) cols)
      (Sql.Table { table = si.si_table; alias })
  in
  let rel =
    C.Rel
      { db = si.si_db.Database.db_name;
        select;
        sql_params = [];
        binds =
          List.map
            (fun (_, out, bv, ty, _) -> { C.bvar = bv; btype = ty; bcol = out })
            cols }
  in
  let rb =
    { rb_var = var;
      rb_cols = List.map (fun (col, _, bv, ty, n) -> (col, bv, ty, n)) cols;
      rb_row_name = si.si_row_name }
  in
  (rel, rb)

(* ------------------------------------------------------------------ *)
(* Region merging helpers                                              *)

let cols_env_of_rel st db caps blocked (r : C.sql_access) =
  (* map bind vars back to the column expressions of the underlying select *)
  let proj_map =
    List.map (fun (e, alias) -> (alias, e)) r.C.select.Sql.projections
  in
  { cols =
      List.filter_map
        (fun b ->
          match List.assoc_opt b.C.bcol proj_map with
          | Some col_expr -> Some (b.C.bvar, (col_expr, b.C.btype))
          | None -> None)
        r.C.binds;
    blocked;
    caps;
    st;
    db;
    params = ref [];
    param_base = Sql.param_count (Sql.Query r.C.select) }

let simple_select (s : Sql.select) =
  s.Sql.group_by = [] && s.Sql.having = None && s.Sql.window = None
  && not s.Sql.distinct

(* merge r2 into r1 as a join (same database) *)
let merge_join st caps kind (r1 : C.sql_access) (r2 : C.sql_access) on_sql =
  let sql_kind = match kind with C.J_inner -> Sql.Inner | C.J_left_outer -> Sql.Left_outer in
  ignore st;
  ignore caps;
  let select =
    { r1.C.select with
      Sql.projections = r1.C.select.Sql.projections @ r2.C.select.Sql.projections;
      joins =
        r1.C.select.Sql.joins
        @ [ { Sql.jkind = sql_kind;
              jtable = r2.C.select.Sql.from;
              on_condition = on_sql } ]
        @ r2.C.select.Sql.joins;
      where =
        (match (r1.C.select.Sql.where, r2.C.select.Sql.where) with
        | None, None -> None
        | Some w, None | None, Some w -> Some w
        | Some a, Some b -> Some (Sql.Binop (Sql.And, a, b))) }
  in
  { C.db = r1.C.db;
    select;
    sql_params = r1.C.sql_params @ r2.C.sql_params;
    binds = r1.C.binds @ r2.C.binds }

(* shift the parameter indices of a select by delta *)
let rec shift_expr delta (e : Sql.expr) : Sql.expr =
  match e with
  | Sql.Param i -> Sql.Param (i + delta)
  | Sql.Col _ | Sql.Lit _ | Sql.Count_star -> e
  | Sql.Binop (op, a, b) -> Sql.Binop (op, shift_expr delta a, shift_expr delta b)
  | Sql.Not e -> Sql.Not (shift_expr delta e)
  | Sql.Is_null e -> Sql.Is_null (shift_expr delta e)
  | Sql.Is_not_null e -> Sql.Is_not_null (shift_expr delta e)
  | Sql.In_list (e, es) ->
    Sql.In_list (shift_expr delta e, List.map (shift_expr delta) es)
  | Sql.Func (f, args) -> Sql.Func (f, List.map (shift_expr delta) args)
  | Sql.Case (branches, default) ->
    Sql.Case
      ( List.map (fun (c, v) -> (shift_expr delta c, shift_expr delta v)) branches,
        Option.map (shift_expr delta) default )
  | Sql.Agg (k, q, e) -> Sql.Agg (k, q, shift_expr delta e)
  | Sql.In_select (e, s) -> Sql.In_select (shift_expr delta e, shift_select delta s)
  | Sql.Exists s -> Sql.Exists (shift_select delta s)
  | Sql.Not_exists s -> Sql.Not_exists (shift_select delta s)
  | Sql.Scalar_select s -> Sql.Scalar_select (shift_select delta s)

and shift_select delta (s : Sql.select) : Sql.select =
  { s with
    Sql.projections = List.map (fun (e, a) -> (shift_expr delta e, a)) s.Sql.projections;
    joins =
      List.map
        (fun j -> { j with Sql.on_condition = shift_expr delta j.Sql.on_condition })
        s.Sql.joins;
    where = Option.map (shift_expr delta) s.Sql.where;
    group_by = List.map (shift_expr delta) s.Sql.group_by;
    having = Option.map (shift_expr delta) s.Sql.having;
    order_by =
      List.map (fun o -> { o with Sql.sort_expr = shift_expr delta o.Sql.sort_expr }) s.Sql.order_by }

(* ------------------------------------------------------------------ *)
(* The clause-list transformation                                      *)

let uses_in var clauses return_ = C.count_uses var clauses return_

let rec push_expr st (e : C.t) : C.t =
  let e = C.map_children (push_expr st) e in
  match e with
  | C.Flwor { clauses; return_ } ->
    let clauses, return_ = push_clauses st clauses return_ in
    let clauses, return_ = merge_regions st clauses return_ in
    let clauses, return_ = prune_binds st clauses return_ in
    C.Flwor { clauses; return_ }
  | e -> e

(* Phase A over one clause list: convert For-over-scan, resolve fields *)
and push_clauses st clauses return_ =
  let rows = ref [] in
  (* Scan conversion. Row bindings are shared across join branches (names
     are unique), so a join predicate navigating the right branch's row
     variable also resolves to column binds. *)
  let rec convert clauses =
    List.concat_map
      (fun clause ->
        match clause with
        | C.For { var; source = C.Call { fn; args = [] } } -> (
          match scan_of_call st fn 0 with
          | Some si ->
            let rel, rb = convert_scan st si var in
            rows := rb :: !rows;
            [ rel; C.Let { var; value = reconstruction rb } ]
          | None -> [ clause ])
        | C.Join { kind; method_; right; on_; export } ->
          [ C.Join { kind; method_; right = convert right; on_; export } ]
        | c -> [ c ])
      clauses
  in
  let converted = convert clauses in
  if !rows = [] then (converted, return_)
  else
    let fix = resolve_fields !rows in
    let is_reconstruction var =
      List.exists (fun rb -> rb.rb_var = var) !rows
    in
    let rec fix_clause clause =
      match clause with
      | C.Let { var; value } when is_reconstruction var ->
        (* don't rewrite the reconstruction itself *)
        C.Let { var; value }
      | C.Join { kind; method_; right; on_; export } ->
        C.Join
          { kind;
            method_;
            right = List.map fix_clause right;
            on_ = fix on_;
            export =
              (match export with
              | C.Bindings -> C.Bindings
              | C.Grouped { gvar; gexpr } ->
                C.Grouped { gvar; gexpr = fix gexpr }) }
      | c -> C.map_clause fix c
    in
    (List.map fix_clause converted, fix return_)

(* Phase B: grow SQL regions along the clause list.

   Parameter expressions may reference only variables from *outer* scopes
   (function parameters, enclosing FLWORs): those are present in the tuple
   environment when the region executes. Variables bound by this clause
   list (including the region's own binds) are blocked. *)
and merge_regions st clauses return_ =
  let all_clause_vars = C.clause_vars clauses in
  let caps_of db_name =
    match Metadata.find_database st.registry db_name with
    | Some db -> (db, Sql_print.capabilities db.Database.vendor)
    | None -> raise Not_pushable
  in
  let rec grow acc clauses return_ =
    match clauses with
    | [] -> (List.rev acc, return_)
    | C.Rel r :: rest -> absorb acc r [] rest return_
    | c :: rest -> grow (c :: acc) rest return_
  (* try to absorb following clauses into region r; [pending] holds
     row-reconstruction lets that sit between the region and the clause
     being absorbed and must be re-emitted after it *)
  and absorb acc r pending clauses return_ =
    match caps_of r.C.db with
    | exception Not_pushable -> grow (C.Rel r :: acc) clauses return_
    | db, caps -> (
      let blocked =
        all_clause_vars @ List.map (fun b -> b.C.bvar) r.C.binds
      in
      let env () = cols_env_of_rel st db caps blocked r in
      (* pending simple lets ($x := $bind / const) are seen through when
         translating downstream clauses *)
      let psub =
        List.filter_map
          (function
            | C.Let { var; value = (C.Var _ | C.Const _) as v } -> Some (var, v)
            | _ -> None)
          pending
      in
      let through e = C.substitute psub e in
      match clauses with
      | C.Where w :: rest -> (
        let env = env () in
        match try_translate env (through w) with
        | Some sql_pred ->
          let r' =
            { r with
              C.select =
                { r.C.select with
                  Sql.where =
                    (match r.C.select.Sql.where with
                    | None -> Some sql_pred
                    | Some old -> Some (Sql.Binop (Sql.And, old, sql_pred))) };
              sql_params = r.C.sql_params @ !(env.params) }
          in
          absorb acc r' pending rest return_
        | None -> finish acc r pending clauses return_)
      | (C.Let { var = _; value = (C.Elem _ | C.Var _ | C.Const _) } as l)
        :: rest ->
        (* row reconstruction or other pure cheap value: slide past it *)
        absorb acc r (l :: pending) rest return_
      | C.Join { kind; right; on_; export; _ } :: rest -> (
        match
          try_merge_join st db caps acc r pending kind right (through on_)
            export rest return_
        with
        | Some result -> result
        | None -> finish acc r pending clauses return_)
      | C.Group { aggs; keys; clustered = false } :: rest -> (
        let keys = List.map (fun (e, v) -> (through e, v)) keys in
        match try_merge_group st db caps acc r pending aggs keys rest return_ with
        | Some result -> result
        | None -> finish acc r pending clauses return_)
      | C.Order { keys } :: rest -> (
        let env = env () in
        let translated =
          List.map (fun (e, desc) -> (try_translate env (through e), desc)) keys
        in
        if List.for_all (fun (t, _) -> t <> None) translated then
          let r' =
            { r with
              C.select =
                { r.C.select with
                  Sql.order_by =
                    List.map
                      (fun (t, desc) ->
                        { Sql.sort_expr = Option.get t; descending = desc })
                      translated };
              sql_params = r.C.sql_params @ !(env.params) }
          in
          absorb acc r' pending rest return_
        else finish acc r pending clauses return_)
      | _ -> finish acc r pending clauses return_)
  and finish acc r pending clauses return_ =
    (* computed-scalar projection: push translatable scalar subexpressions
       of the return into the region's SELECT list (pattern d etc.) *)
    let r, return_, clauses =
      push_projections st r return_ clauses (C.clause_vars (List.rev acc))
    in
    grow (List.rev_append (C.Rel r :: pending) acc) clauses return_
  in
  try grow [] clauses return_ with Not_pushable -> (clauses, return_)

and try_merge_join st db caps acc r1 pending kind right on_ export rest return_ =
  match right with
  | [ C.Rel r2 ] | [ C.Rel r2; C.Let _ ] -> (
    let right_lets =
      List.filter (function C.Let _ -> true | _ -> false) right
    in
    if r2.C.db <> r1.C.db || not (simple_select r2.C.select)
       || not (simple_select r1.C.select)
       || r1.C.select.Sql.order_by <> []
    then None
    else
      let blocked =
        C.clause_vars (List.rev acc)
        @ C.clause_vars rest
        @ List.map (fun b -> b.C.bvar) r1.C.binds
        @ List.map (fun b -> b.C.bvar) r2.C.binds
      in
      let delta = Sql.param_count (Sql.Query r1.C.select) in
      let r2_shifted = { r2 with C.select = shift_select delta r2.C.select } in
      let env =
        { cols =
            (cols_env_of_rel st db caps blocked r1).cols
            @ (cols_env_of_rel st db caps blocked r2_shifted).cols;
          blocked;
          caps;
          st;
          db;
          params = ref [];
          param_base = delta + Sql.param_count (Sql.Query r2.C.select) }
      in
      match try_translate env on_ with
      | None -> None
      | Some on_sql -> (
        let merged = merge_join st caps kind r1 r2_shifted on_sql in
        let merged =
          { merged with C.sql_params = merged.C.sql_params @ !(env.params) }
        in
        match export with
        | C.Bindings ->
          Some
            (merge_regions_resume st acc merged
               (pending @ right_lets)
               rest return_)
        | C.Grouped { gvar; gexpr } ->
          merge_grouped_join st db caps acc merged r1 r2 pending right_lets gvar
            gexpr rest return_))
  | _ -> None

(* Grouped (outer-join + group-by) merge: the SQL is the flat outer join;
   the middleware re-groups adjacent rows per left tuple with the
   pre-clustered streaming operator (§4.2, §5.2). When the group variable
   is used only under count(), the aggregation itself is pushed and the
   SQL matches pattern (g). *)
and merge_grouped_join st db caps acc merged r1 r2 pending right_lets gvar gexpr
    rest return_ =
  ignore db;
  ignore caps;
  (* a non-null column of the right side witnesses a real match *)
  let witness =
    List.find_opt
      (fun b ->
        match
          List.find_opt
            (fun (e, alias) -> alias = b.C.bcol && (match e with Sql.Col _ -> true | _ -> false))
            r2.C.select.Sql.projections
        with
        | Some _ -> true
        | None -> false)
      r2.C.binds
  in
  match witness with
  | None -> None
  | Some wb ->
    (* Special case: gvar used once as count($gvar) and gexpr is the row
       reconstruction (or any per-match value) -> push COUNT (pattern g). *)
    let count_only =
      uses_in gvar rest return_ = 1
      &&
      let found = ref false in
      let rec find e =
        (match e with
        | C.Call { fn; args = [ C.Var v ] }
          when v = gvar && Qname.equal fn (Names.fn "count") ->
          found := true
        | _ -> ());
        ignore (C.map_children (fun c -> find c; c) e)
      in
      List.iter
        (fun c -> ignore (C.map_clause (fun e -> find e; e) c))
        rest;
      find return_;
      !found
    in
    if count_only then begin
      (* GROUP BY the left columns, COUNT the right witness column *)
      let left_cols = r1.C.select.Sql.projections in
      let cnt_alias = fresh st "agg" in
      let cnt_var = fresh_var st gvar in
      let select =
        { merged.C.select with
          Sql.projections =
            left_cols
            @ [ ( Sql.Agg
                    ( Sql.Count,
                      Sql.All,
                      (let proj =
                         List.assoc wb.C.bcol
                           (List.map (fun (e, a) -> (a, e)) r2.C.select.Sql.projections)
                       in
                       proj) ),
                  cnt_alias ) ];
          group_by = List.map fst left_cols }
      in
      let merged' =
        { merged with
          C.select;
          binds =
            r1.C.binds
            @ [ { C.bvar = cnt_var; btype = Atomic.T_integer; bcol = cnt_alias } ] }
      in
      (* replace count($gvar) with the new bind downstream *)
      let rec replace e =
        match e with
        | C.Call { fn; args = [ C.Var v ] }
          when v = gvar && Qname.equal fn (Names.fn "count") ->
          C.Var cnt_var
        | e -> C.map_children replace e
      in
      let rest = List.map (C.map_clause replace) rest in
      let return_ = replace return_ in
      Some (merge_regions_resume st acc merged' pending rest return_)
    end
    else begin
      (* keep the flat SQL; regroup adjacent rows on the left columns with
         the streaming group operator *)
      let gitem = fresh_var st gvar in
      let left_keys =
        List.map (fun b -> (C.Var b.C.bvar, b.C.bvar)) r1.C.binds
      in
      let group =
        C.Group
          { clustered = true;
            aggs = [ (gitem, gvar) ];
            keys = left_keys }
      in
      let let_item =
        C.Let
          { var = gitem;
            value =
              C.If
                { cond = C.Ebv (C.Call { fn = Names.fn "exists"; args = [ C.Var wb.C.bvar ] });
                  then_ = gexpr;
                  else_ = C.Empty } }
      in
      Some
        (merge_regions_resume st acc merged
           (pending @ right_lets)
           ((let_item :: [ group ]) @ rest)
           return_)
    end

(* FLWGOR group-by over a region: patterns (e) and (f). *)
and try_merge_group st db caps acc r pending aggs keys rest return_ =
  let blocked =
    C.clause_vars (List.rev acc) @ List.map (fun b -> b.C.bvar) r.C.binds
  in
  let env = cols_env_of_rel st db caps blocked r in
  let translated_keys =
    List.map (fun (e, out) -> (try_translate env e, out)) keys
  in
  if not (List.for_all (fun (t, _) -> t <> None) translated_keys) then None
  else if not (simple_select r.C.select) then None
  else begin
    (* row variables the aggregated inputs refer to (the Lets in pending) *)
    let agg_rows =
      List.filter_map
        (fun (v_in, v_out) ->
          let recon =
            List.find_map
              (function
                | C.Let { var; value } when var = v_in -> Some value
                | _ -> None)
              pending
          in
          Some (v_in, v_out, recon))
        aggs
    in
    (* Collect downstream aggregate uses of each agg output var.
       Supported shapes: count($p), sum/min/max/avg over a field of $p. *)
    let replacements = ref [] in
    let extra_projs = ref [] in
    let ok = ref true in
    let field_col _v name =
      (* $p's rows come from the region: field -> underlying column expr *)
      List.find_map
        (fun (e, _) ->
          match e with
          | Sql.Col (_, col) when String.equal col name.Qname.local -> Some e
          | _ -> None)
        r.C.select.Sql.projections
    in
    let rec scan e =
      match e with
      | C.Call { fn; args = [ C.Var v ] }
        when List.exists (fun (_, out, _) -> out = v) agg_rows
             && Qname.equal fn (Names.fn "count") ->
        let alias = fresh st "agg" in
        let bv = fresh_var st "cnt" in
        extra_projs := (Sql.Count_star, alias, bv, Atomic.T_integer) :: !extra_projs;
        replacements := (e, C.Var bv) :: !replacements;
        e
      | C.Call { fn; args = [ arg ] } when Fn_lib.is_aggregate fn -> (
        let target =
          match arg with
          | C.Data (C.Child (C.Var v, name)) | C.Child (C.Var v, name) ->
            if List.exists (fun (_, out, _) -> out = v) agg_rows then
              Some name
            else None
          | _ -> None
        in
        match target with
        | Some name -> (
          match field_col "" name with
          | Some col ->
            let kind =
              if Qname.equal fn (Names.fn "count") then Sql.Count
              else if Qname.equal fn (Names.fn "sum") then Sql.Sum
              else if Qname.equal fn (Names.fn "min") then Sql.Min
              else if Qname.equal fn (Names.fn "max") then Sql.Max
              else Sql.Avg
            in
            let alias = fresh st "agg" in
            let bv = fresh_var st "agg" in
            let ty =
              if kind = Sql.Count then Atomic.T_integer else Atomic.T_decimal
            in
            extra_projs :=
              (Sql.Agg (kind, Sql.All, col), alias, bv, ty) :: !extra_projs;
            replacements := (e, C.Var bv) :: !replacements;
            e
          | None ->
            ok := false;
            e)
        | None ->
          ignore (C.map_children (fun c -> scan c) e);
          e)
      | C.Var v when List.exists (fun (_, out, _) -> out = v) agg_rows ->
        (* raw use of an aggregated variable blocks the push *)
        ok := false;
        e
      | e ->
        ignore (C.map_children scan e);
        e
    in
    List.iter (fun c -> ignore (C.map_clause (fun e -> ignore (scan e); e) c)) rest;
    ignore (scan return_);
    if not !ok then None
    else begin
      let key_cols =
        List.map
          (fun (t, out) ->
            let alias = fresh st "k" in
            (Option.get t, alias, out))
          translated_keys
      in
      let distinct = !extra_projs = [] in
      let select =
        { r.C.select with
          Sql.projections =
            List.map (fun (e, alias, _) -> (e, alias)) key_cols
            @ List.map (fun (e, alias, _, _) -> (e, alias)) (List.rev !extra_projs);
          group_by =
            (if distinct then [] else List.map (fun (e, _, _) -> e) key_cols);
          distinct }
      in
      (* the key's type is recoverable when the key expression is a plain
         column reference *)
      let key_binds =
        List.map2
          (fun (_, alias, out) (orig_expr, _) ->
            let btype =
              match orig_expr with
              | C.Var v | C.Data (C.Var v) -> (
                match List.find_opt (fun b -> b.C.bvar = v) r.C.binds with
                | Some b -> b.C.btype
                | None -> Atomic.T_untyped)
              | _ -> Atomic.T_untyped
            in
            { C.bvar = out; btype; bcol = alias })
          key_cols keys
      in
      let agg_binds =
        List.map
          (fun (_, alias, bv, ty) -> { C.bvar = bv; btype = ty; bcol = alias })
          (List.rev !extra_projs)
      in
      let merged =
        { r with
          C.select;
          binds = key_binds @ agg_binds }
      in
      let apply_replacements e =
        let rec go e =
          match List.assoc_opt e !replacements with
          | Some r -> r
          | None -> C.map_children go e
        in
        go e
      in
      let rest = List.map (C.map_clause apply_replacements) rest in
      let return_ = apply_replacements return_ in
      Some (merge_regions_resume st acc merged [] rest return_)
    end
  end

and merge_regions_resume _st acc merged pending rest return_ =
  (* rebuild the clause list; the caller's fixpoint resumes merging *)
  (List.rev_append acc ((C.Rel merged :: pending) @ rest), return_)

(* push translatable scalar computations of the return into the SELECT *)
and push_projections st r return_ clauses outer_vars =
  match Metadata.find_database st.registry r.C.db with
  | None -> (r, return_, clauses)
  | Some db ->
    let caps = Sql_print.capabilities db.Database.vendor in
    if not (simple_select r.C.select) then (r, return_, clauses)
    else begin
      let blocked = outer_vars @ List.map (fun b -> b.C.bvar) r.C.binds in
      let r_ref = ref r in
      let pushable_shape e =
        match e with
        | C.If _ -> caps.Sql_print.supports_case
        | C.Call { fn; args } -> (
          Qname.equal fn (Names.fn "concat")
          ||
          match Fn_lib.find fn (List.length args) with
          | Some { Fn_lib.translation = Fn_lib.Sql_function _; _ } -> true
          | _ -> false)
        | C.Binop ((C.Add | C.Sub | C.Mul | C.Div), _, _) -> true
        | _ -> false
      in
      let rec walk e =
        if pushable_shape e then begin
          let env = cols_env_of_rel st db caps blocked !r_ref in
          let env = { env with param_base = Sql.param_count (Sql.Query (!r_ref).C.select) } in
          (* only worthwhile when the expression actually reads region
             columns *)
          let reads_region =
            let fv = C.free_vars e () in
            List.exists (fun b -> Hashtbl.mem fv b.C.bvar) (!r_ref).C.binds
          in
          if not reads_region then C.map_children walk e
          else
            match try_translate env e with
            | Some sql ->
              let alias = fresh st "c" in
              let bv = fresh_var st "proj" in
              r_ref :=
                { !r_ref with
                  C.select =
                    { (!r_ref).C.select with
                      Sql.projections =
                        (!r_ref).C.select.Sql.projections @ [ (sql, alias) ] };
                  sql_params = (!r_ref).C.sql_params @ !(env.params);
                  binds =
                    (!r_ref).C.binds
                    @ [ { C.bvar = bv; btype = Atomic.T_untyped; bcol = alias } ] };
              C.Var bv
            | None -> C.map_children walk e
        end
        else
          match e with
          | C.Flwor _ -> e  (* do not cross binder scopes *)
          | e -> C.map_children walk e
      in
      let return' = walk return_ in
      (!r_ref, return', clauses)
    end

(* Phase C: drop binds (and their projections) that nothing references *)
and prune_binds _st clauses return_ =
  let rec prune before = function
    | [] -> (List.rev before, return_)
    | C.Rel r :: rest ->
      if r.C.select.Sql.group_by <> [] || r.C.select.Sql.distinct then
        (* grouped/distinct projections stay aligned with their binds *)
        prune (C.Rel r :: before) rest
      else begin
        let used b = uses_in b.C.bvar rest return_ > 0 in
        let keep, _drop = List.partition used r.C.binds in
        let keep_cols = List.map (fun b -> b.C.bcol) keep in
        let projections =
          List.filter
            (fun (_, alias) -> List.mem alias keep_cols)
            r.C.select.Sql.projections
        in
        let projections =
          if projections = [] then [ (Sql.Lit (Sql_value.Int 1), "one") ]
          else projections
        in
        let r' =
          { r with C.select = { r.C.select with Sql.projections }; binds = keep }
        in
        prune (C.Rel r' :: before) rest
      end
    | c :: rest -> prune (c :: before) rest
  in
  prune [] clauses

(* ------------------------------------------------------------------ *)
(* Phase D: parameterize join right sides for PP-k                      *)

(* [gate ~outer r] may veto parameterization of a join right side [r]
   given the clauses preceding the join ([outer], source order): the
   cost-based transfer-volume gate declines when probing block-by-block is
   estimated to ship more than fetching the inner region whole. A vetoed
   join keeps its unparameterized [Rel] right side — the same plan shape
   produced when no key is translatable — so the executor path is
   unchanged and results are byte-identical. *)
let rec parameterize_joins ~gate st e =
  let e = C.map_children (parameterize_joins ~gate st) e in
  match e with
  | C.Flwor { clauses; return_ } ->
    let rec fix before = function
      | [] -> []
      | C.Join { kind; method_; right = C.Rel r :: right_rest; on_; export }
        :: rest
        when r.C.sql_params = [] && gate ~outer:(List.rev before) r -> (
        let right_vars = C.clause_vars (C.Rel r :: right_rest) in
        match Optimizer.equi_join_keys ~right_vars on_ with
        | Some (pairs, _residual) -> (
          (* keys whose right side is a plain Rel bind become col = ? *)
          let bind_col b =
            List.assoc_opt b.C.bcol
              (List.map (fun (pe, a) -> (a, pe)) r.C.select.Sql.projections)
          in
          let translatable =
            List.filter_map
              (fun (lexpr, rexpr) ->
                match rexpr with
                | C.Var v | C.Data (C.Var v) -> (
                  match List.find_opt (fun b -> b.C.bvar = v) r.C.binds with
                  | Some b -> (
                    match bind_col b with
                    | Some col -> Some (lexpr, col)
                    | None -> None)
                  | None -> None)
                | _ -> None)
              pairs
          in
          match translatable with
          | [] ->
            let c =
              C.Join { kind; method_; right = C.Rel r :: right_rest; on_; export }
            in
            c :: fix (c :: before) rest
          | keys ->
            let base = Sql.param_count (Sql.Query r.C.select) in
            let conds =
              List.mapi
                (fun i (_, col) -> Sql.Binop (Sql.Eq, col, Sql.Param (base + i + 1)))
                keys
            in
            let where' =
              List.fold_left
                (fun acc c ->
                  match acc with
                  | None -> Some c
                  | Some a -> Some (Sql.Binop (Sql.And, a, c)))
                r.C.select.Sql.where conds
            in
            let r' =
              { r with
                C.select = { r.C.select with Sql.where = where' };
                sql_params = r.C.sql_params @ List.map fst keys }
            in
            let c =
              C.Join
                { kind; method_; right = C.Rel r' :: right_rest; on_; export }
            in
            c :: fix (c :: before) rest)
        | None ->
          let c =
            C.Join { kind; method_; right = C.Rel r :: right_rest; on_; export }
          in
          c :: fix (c :: before) rest)
      | c :: rest -> c :: fix (c :: before) rest
    in
    C.Flwor { clauses = fix [] clauses; return_ }
  | e -> e

(* ------------------------------------------------------------------ *)
(* Window pushdown: subsequence over a pushed ordered region            *)

let rec push_windows st e =
  let e = C.map_children (push_windows st) e in
  match e with
  | C.Call
      { fn;
        args = C.Flwor { clauses = C.Rel r :: rest_lets; return_ } :: pos_args }
    when Qname.equal fn (Names.fn "subsequence")
         && List.for_all (function C.Let _ -> true | _ -> false) rest_lets -> (
    let window =
      match pos_args with
      | [ C.Const (Atomic.Integer start) ] -> Some { Sql.start; count = None }
      | [ C.Const (Atomic.Integer start); C.Const (Atomic.Integer count) ] ->
        Some { Sql.start; count = Some count }
      | _ -> None
    in
    match (window, Metadata.find_database st.registry r.C.db) with
    | Some w, Some db
      when (let caps = Sql_print.capabilities db.Database.vendor in
            caps.Sql_print.supports_window
            && (w.Sql.start <= 1 || caps.Sql_print.supports_window_offset))
           && r.C.select.Sql.window = None ->
      C.Flwor
        { clauses =
            C.Rel { r with C.select = { r.C.select with Sql.window = Some w } }
            :: rest_lets;
          return_ }
    | _ -> e)
  | e -> e

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)

let push ?(gate = fun ~outer:_ _ -> true) registry e =
  let st = { registry; counter = ref 0 } in
  let rec fixpoint n e =
    if n = 0 then e
    else
      let e' = push_expr st e in
      if C.equal e' e then e else fixpoint (n - 1) e'
  in
  let e = fixpoint 6 e in
  let e = parameterize_joins ~gate st e in
  push_windows st e

(* ------------------------------------------------------------------ *)
(* SQL extraction for explain / benches                                *)

let pushed_sql registry e =
  let acc = ref [] in
  let rec collect_clause c =
    match c with
    | C.Rel r ->
      acc := (r.C.db, r.C.select) :: !acc;
      ignore (C.map_clause (fun e -> collect e; e) c)
    | C.Join { right; on_; export; _ } ->
      List.iter collect_clause right;
      collect on_;
      (match export with
      | C.Bindings -> ()
      | C.Grouped { gexpr; _ } -> collect gexpr)
    | c -> ignore (C.map_clause (fun e -> collect e; e) c)
  and collect e =
    match e with
    | C.Flwor { clauses; return_ } ->
      List.iter collect_clause clauses;
      collect return_
    | e ->
      ignore
        (C.map_children
           (fun child ->
             collect child;
             child)
           e)
  in
  collect e;
  List.rev_map
    (fun (db_name, select) ->
      let vendor =
        match Metadata.find_database registry db_name with
        | Some db -> db.Database.vendor
        | None -> Database.Generic_sql92
      in
      (db_name, Sql_print.select_to_string vendor select))
    !acc
