(** SQL plan preparation and generation (§4.3-§4.4).

    Pushdown looks at regions of the expression tree whose data all comes
    from the same relational database and compiles them into SQL, leaving
    the rest for the middleware engine. The phases:

    {b Scan conversion}: a FLWOR [for] over an introspected table function
    becomes a {!Cexpr.clause.Rel} clause binding one variable per column,
    plus a row-element reconstruction [let]; field navigation through the
    row variable is resolved to the column variables, so a column a query
    never touches is never fetched (source-access elimination, §4.2).

    {b Region growth}: adjacent clauses fold into the region —
    [where] predicates (with non-pushable subexpressions evaluated in the
    middleware and bound as SQL {e parameters}), same-database joins
    (inner and left outer, patterns b/c), grouped outer joins with
    aggregates (pattern g), FLWGOR group-bys with aggregations (pattern e)
    and the DISTINCT special case (pattern f), [order by], and computed
    scalar projections ([if-then-else] → CASE, pattern d; string/numeric
    functions per the vendor's capabilities). Quantified expressions over
    same-database tables translate to EXISTS semi-joins (pattern h).
    [fn:subsequence] over a pushed ordered region becomes the vendor's row
    window — Oracle's ROWNUM wrapper, pattern i — when the dialect
    supports one.

    {b Join parameterization}: a cross-database (or otherwise unmergeable)
    join whose right side is a pushed region with equi-join keys gets the
    key comparison compiled into the right side's SQL as [col = ?]
    parameters bound from left-tuple values — the access path the PP-k
    method batches in blocks of k (§4.2).

    Pushdown aggressiveness is vendor-dependent: the dialect capabilities
    of {!Aldsp_relational.Sql_print.capabilities} gate CASE, concatenation
    and windows, with "base SQL92" the conservative fallback. *)

val push :
  ?gate:(outer:Cexpr.clause list -> Cexpr.sql_access -> bool) ->
  Metadata.t ->
  Cexpr.t ->
  Cexpr.t
(** [gate ~outer r] (default: always true) is consulted before a join's
    right-side region [r] is parameterized for PP-k; [outer] is the
    clause pipeline preceding the join. The server installs the
    cost-based transfer-volume gate here: when probing block-by-block is
    estimated to cost more than shipping the region whole, the join keeps
    its unparameterized right side — the same (fully tested) plan shape
    produced when no equi key translates to a column — so gating never
    changes results. *)

val pushed_sql : Metadata.t -> Cexpr.t -> (string * string) list
(** All (database, SQL text) pairs appearing in a plan, rendered in each
    database's own dialect — what the bench harness prints against
    Tables 1 and 2. *)
