open Aldsp_xml
open Aldsp_relational
module Sql = Sql_ast

type t = {
  storage : Database.t;
  clock : unit -> float;
  ttls : (Qname.t, float) Hashtbl.t;
  (* typed values per key, so hits keep their type annotations *)
  materialized : (string, Item.sequence) Hashtbl.t;
  (* worker-pool calls hit the cache concurrently: the lock covers the
     counters, the ttl/materialized tables, and makes store's
     DELETE+INSERT atomic with respect to concurrent lookups *)
  lock : Mutex.t;
  mutable hit_count : int;
  mutable miss_count : int;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let table_name = "ALDSP_FN_CACHE"

let ensure_table db =
  match Database.find_table db table_name with
  | Ok _ -> ()
  | Error _ ->
    Database.add_table db
      (Table.create ~primary_key:[ "FKEY" ] table_name
         [ Table.column ~nullable:false "FKEY" Table.T_varchar;
           Table.column ~nullable:false "RESULT" Table.T_varchar;
           Table.column ~nullable:false "EXPIRES" Table.T_decimal ])

let create ?(clock = Unix.gettimeofday) storage =
  ensure_table storage;
  { storage;
    clock;
    ttls = Hashtbl.create 16;
    materialized = Hashtbl.create 64;
    lock = Mutex.create ();
    hit_count = 0;
    miss_count = 0 }

let enable t fn ~ttl_seconds =
  locked t (fun () -> Hashtbl.replace t.ttls fn ttl_seconds)

let disable t fn = locked t (fun () -> Hashtbl.remove t.ttls fn)
let is_enabled t fn = locked t (fun () -> Hashtbl.mem t.ttls fn)

let key_of fn args =
  let arg_str = String.concat "\x00" (List.map Item.serialize args) in
  Printf.sprintf "%s(%s)" (Qname.to_string fn) arg_str

(* the single-row lookup of §5.5 *)
let select_entry =
  Sql.select
    ~projections:[ (Sql.col "c" "RESULT", "r"); (Sql.col "c" "EXPIRES", "e") ]
    ~where:(Sql.Binop (Sql.Eq, Sql.col "c" "FKEY", Sql.Param 1))
    (Sql.Table { table = table_name; alias = "c" })

let lookup t fn args =
  let key = key_of fn args in
  locked t @@ fun () ->
  match
    Sql_exec.query t.storage ~params:[| Sql_value.Str key |] select_entry
  with
  | Error _ -> None
  | Ok { Sql_exec.rows = []; _ } ->
    t.miss_count <- t.miss_count + 1;
    None
  | Ok { Sql_exec.rows = row :: _; _ } -> (
    let expires =
      match row.(1) with
      | Sql_value.Float f -> f
      | Sql_value.Int i -> float_of_int i
      | _ -> 0.
    in
    if t.clock () > expires then begin
      t.miss_count <- t.miss_count + 1;
      None
    end
    else begin
      t.hit_count <- t.hit_count + 1;
      match Hashtbl.find_opt t.materialized key with
      | Some value -> Some value
      | None -> (
        (* cold hit (e.g. populated by another node): rebuild from the
           serialized XML; atomics re-enter untyped *)
        match row.(0) with
        | Sql_value.Str text -> (
          match Xml_parser.parse_fragment text with
          | Ok nodes -> Some (List.map (fun n -> Item.Node n) nodes)
          | Error _ -> Some [ Item.Atom (Atomic.Untyped text) ])
        | _ -> None)
    end)

let store t fn args value =
  let key = key_of fn args in
  locked t @@ fun () ->
  let ttl = Option.value (Hashtbl.find_opt t.ttls fn) ~default:60. in
  let expires = t.clock () +. ttl in
  ignore
    (Sql_exec.execute_dml t.storage
       (Sql.Delete
          { table = table_name;
            where =
              Some (Sql.Binop (Sql.Eq, Sql.Col (None, "FKEY"),
                               Sql.Lit (Sql_value.Str key))) }));
  ignore
    (Sql_exec.execute_dml t.storage
       (Sql.Insert
          { table = table_name;
            columns = [ "FKEY"; "RESULT"; "EXPIRES" ];
            values =
              [ Sql.Lit (Sql_value.Str key);
                Sql.Lit (Sql_value.Str (Item.serialize value));
                Sql.Lit (Sql_value.Float expires) ] }));
  Hashtbl.replace t.materialized key value

let invalidate t fn =
  let prefix = Qname.to_string fn ^ "(" in
  locked t @@ fun () ->
  ignore
    (Sql_exec.execute_dml t.storage
       (Sql.Delete
          { table = table_name;
            where =
              Some
                (Sql.Binop
                   ( Sql.Like,
                     Sql.Col (None, "FKEY"),
                     Sql.Lit (Sql_value.Str (prefix ^ "%")) )) }));
  Hashtbl.iter
    (fun k _ ->
      if String.length k >= String.length prefix
         && String.sub k 0 (String.length prefix) = prefix
      then Hashtbl.remove t.materialized k)
    (Hashtbl.copy t.materialized)

let wrapper t fd args compute =
  if fd.Metadata.fd_cacheable && is_enabled t fd.Metadata.fd_name then
    match lookup t fd.Metadata.fd_name args with
    | Some value -> value
    | None ->
      let value = compute () in
      store t fd.Metadata.fd_name args value;
      value
  else compute ()

let hits t = locked t (fun () -> t.hit_count)
let misses t = locked t (fun () -> t.miss_count)

let reset_stats t =
  locked t (fun () ->
      t.hit_count <- 0;
      t.miss_count <- 0)
