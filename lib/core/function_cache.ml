open Aldsp_xml
open Aldsp_relational
module Sql = Sql_ast
module Singleflight = Aldsp_concurrency.Singleflight
module IntMap = Map.Make (Int)

type t = {
  storage : Database.t;
  clock : unit -> float;
  ttls : (Qname.t, float) Hashtbl.t;
  (* typed values per key, so hits keep their type annotations; bounded:
     an evicted value falls back to the persistent row's XML (cold hit) *)
  materialized : (string, Item.sequence) Hashtbl.t;
  capacity : int;
  (* recency bookkeeping for [materialized], mirroring Plan_cache: a
     monotonically increasing tick per touch, with the tick->key map
     giving the LRU victim in O(log n) *)
  mat_ticks : (string, int) Hashtbl.t;
  mutable mat_recency : string IntMap.t;
  mutable tick : int;
  (* one flight per key: concurrent misses coalesce on the computing
     session instead of both invoking the (expensive) function *)
  flights : Item.sequence Singleflight.t;
  (* worker-pool calls hit the cache concurrently: the lock covers the
     counters, the ttl/materialized tables, and makes store's
     DELETE+INSERT atomic with respect to concurrent lookups *)
  lock : Mutex.t;
  mutable hit_count : int;
  mutable miss_count : int;
  mutable coalesced_count : int;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let table_name = "ALDSP_FN_CACHE"

let ensure_table db =
  match Database.find_table db table_name with
  | Ok _ -> ()
  | Error _ ->
    Database.add_table db
      (Table.create ~primary_key:[ "FKEY" ] table_name
         [ Table.column ~nullable:false "FKEY" Table.T_varchar;
           Table.column ~nullable:false "RESULT" Table.T_varchar;
           Table.column ~nullable:false "EXPIRES" Table.T_decimal ])

let create ?(clock = Unix.gettimeofday) ?(capacity = 256) storage =
  ensure_table storage;
  { storage;
    clock;
    ttls = Hashtbl.create 16;
    materialized = Hashtbl.create 64;
    capacity = max capacity 1;
    mat_ticks = Hashtbl.create 64;
    mat_recency = IntMap.empty;
    tick = 0;
    flights = Singleflight.create ();
    lock = Mutex.create ();
    hit_count = 0;
    miss_count = 0;
    coalesced_count = 0 }

let enable t fn ~ttl_seconds =
  locked t (fun () -> Hashtbl.replace t.ttls fn ttl_seconds)

let disable t fn = locked t (fun () -> Hashtbl.remove t.ttls fn)
let is_enabled t fn = locked t (fun () -> Hashtbl.mem t.ttls fn)

let key_of fn args =
  let arg_str = String.concat "\x00" (List.map Item.serialize args) in
  Printf.sprintf "%s(%s)" (Qname.to_string fn) arg_str

(* lock held *)
let touch_materialized t key =
  (match Hashtbl.find_opt t.mat_ticks key with
  | Some old -> t.mat_recency <- IntMap.remove old t.mat_recency
  | None -> ());
  t.tick <- t.tick + 1;
  Hashtbl.replace t.mat_ticks key t.tick;
  t.mat_recency <- IntMap.add t.tick key t.mat_recency

(* lock held *)
let forget_materialized t key =
  (match Hashtbl.find_opt t.mat_ticks key with
  | Some old ->
    t.mat_recency <- IntMap.remove old t.mat_recency;
    Hashtbl.remove t.mat_ticks key
  | None -> ());
  Hashtbl.remove t.materialized key

(* lock held: bound the per-process typed-value table. Evicting here
   loses nothing but type annotations — the persistent row survives, so
   the entry is still a (cold) hit. *)
let evict_materialized t =
  while Hashtbl.length t.materialized > t.capacity do
    match IntMap.min_binding_opt t.mat_recency with
    | Some (_, oldest) -> forget_materialized t oldest
    | None -> Hashtbl.reset t.materialized
  done

(* the single-row lookup of §5.5 *)
let select_entry =
  Sql.select
    ~projections:[ (Sql.col "c" "RESULT", "r"); (Sql.col "c" "EXPIRES", "e") ]
    ~where:(Sql.Binop (Sql.Eq, Sql.col "c" "FKEY", Sql.Param 1))
    (Sql.Table { table = table_name; alias = "c" })

(* [count:false] is the under-flight re-check in [wrapper]: the outer
   (counting) lookup already recorded the miss for this logical call, so
   the probe inside the flight must not count it again. *)
let lookup_probe ~count t fn args =
  let key = key_of fn args in
  locked t @@ fun () ->
  match
    Sql_exec.query t.storage ~params:[| Sql_value.Str key |] select_entry
  with
  | Error _ -> None
  | Ok { Sql_exec.rows = []; _ } ->
    if count then t.miss_count <- t.miss_count + 1;
    None
  | Ok { Sql_exec.rows = row :: _; _ } -> (
    let expires =
      match row.(1) with
      | Sql_value.Float f -> f
      | Sql_value.Int i -> float_of_int i
      | _ -> 0.
    in
    if t.clock () > expires then begin
      if count then t.miss_count <- t.miss_count + 1;
      None
    end
    else begin
      if count then t.hit_count <- t.hit_count + 1;
      match Hashtbl.find_opt t.materialized key with
      | Some value ->
        touch_materialized t key;
        Some value
      | None -> (
        (* cold hit (e.g. populated by another node, or evicted from the
           bounded typed-value table): rebuild from the serialized XML;
           atomics re-enter untyped *)
        match row.(0) with
        | Sql_value.Str text -> (
          match Xml_parser.parse_fragment text with
          | Ok nodes -> Some (List.map (fun n -> Item.Node n) nodes)
          | Error _ -> Some [ Item.Atom (Atomic.Untyped text) ])
        | _ -> None)
    end)

let lookup t fn args = lookup_probe ~count:true t fn args

let store t fn args value =
  let key = key_of fn args in
  locked t @@ fun () ->
  let ttl = Option.value (Hashtbl.find_opt t.ttls fn) ~default:60. in
  let expires = t.clock () +. ttl in
  ignore
    (Sql_exec.execute_dml t.storage
       (Sql.Delete
          { table = table_name;
            where =
              Some (Sql.Binop (Sql.Eq, Sql.Col (None, "FKEY"),
                               Sql.Lit (Sql_value.Str key))) }));
  ignore
    (Sql_exec.execute_dml t.storage
       (Sql.Insert
          { table = table_name;
            columns = [ "FKEY"; "RESULT"; "EXPIRES" ];
            values =
              [ Sql.Lit (Sql_value.Str key);
                Sql.Lit (Sql_value.Str (Item.serialize value));
                Sql.Lit (Sql_value.Float expires) ] }));
  Hashtbl.replace t.materialized key value;
  touch_materialized t key;
  evict_materialized t

let invalidate t fn =
  let prefix = Qname.to_string fn ^ "(" in
  locked t @@ fun () ->
  ignore
    (Sql_exec.execute_dml t.storage
       (Sql.Delete
          { table = table_name;
            where =
              Some
                (Sql.Binop
                   ( Sql.Like,
                     Sql.Col (None, "FKEY"),
                     Sql.Lit (Sql_value.Str (prefix ^ "%")) )) }));
  Hashtbl.iter
    (fun k _ ->
      if String.length k >= String.length prefix
         && String.sub k 0 (String.length prefix) = prefix
      then forget_materialized t k)
    (Hashtbl.copy t.materialized)

let wrapper t fd args compute =
  let fn = fd.Metadata.fd_name in
  if fd.Metadata.fd_cacheable && is_enabled t fn then
    match lookup t fn args with
    | Some value -> value
    | None -> (
      (* single-flight around the miss: concurrent sessions missing on
         the same key coalesce on one computation instead of all
         invoking the function ("two concurrent misses both compute" is
         exactly the redundancy this kills). The leader re-checks the
         cache under the flight (without double-counting the miss): a
         store that landed between our lookup and the flight forming
         serves everyone without recomputing. *)
      match
        Singleflight.run t.flights (key_of fn args) (fun () ->
            match lookup_probe ~count:false t fn args with
            | Some value -> value
            | None ->
              let value = compute () in
              store t fn args value;
              value)
      with
      | Singleflight.Led value -> value
      | Singleflight.Joined value ->
        locked t (fun () -> t.coalesced_count <- t.coalesced_count + 1);
        value)
  else compute ()

let hits t = locked t (fun () -> t.hit_count)
let misses t = locked t (fun () -> t.miss_count)
let coalesced t = locked t (fun () -> t.coalesced_count)
let materialized_count t = locked t (fun () -> Hashtbl.length t.materialized)

let reset_stats t =
  locked t (fun () ->
      t.hit_count <- 0;
      t.miss_count <- 0;
      t.coalesced_count <- 0)
