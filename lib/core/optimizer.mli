(** The rule-based optimizer (§4.2-§4.3).

    Rule families, in the paper's terms:

    - {b View unfolding}: XQuery function inlining and un-nesting, the
      analogue of relational view unfolding. Views (layers of data
      services) are first optimized by a {e sub-optimizer} whose
      query-independent result is cached per function and reused across
      queries, with eviction bounding the cache (§4.2). Cache-enabled
      functions are not inlined — their calls must stay visible to the
      function cache (§5.5).
    - {b Source-access elimination}: navigation into constructed elements
      is resolved statically ([data(<C><L>{$n}</L>…</C>/L)] → [$n]), so
      unused branches of a view are never computed or fetched (§4.2).
    - {b SQL plan preparation} (§4.3): where-clauses split into conjuncts
      and pushed down past independent clauses; join expressions
      introduced for for-clauses; FLWORs nested in lets or in return
      expressions rewritten as (grouped) left outer joins and hoisted into
      the outer FLWOR.
    - {b Inverse functions} (§4.5): comparisons of the form
      [f(x) op y] with a registered inverse [g] rewrite to [x op g(y)], so
      an otherwise-opaque external transformation no longer blocks
      pushdown (and lineage).
    - {b Join method selection} (§4.2, §5.2): PP-k (default [k]=20) when
      the right side is a pushed parameterized relational access, index
      nested loop for independent equi-joins, nested loop otherwise.

    The pipeline is [optimize] → {!Pushdown.push} → [select_methods]. *)

type options = {
  inline_views : bool;
  introduce_joins : bool;
  eliminate_constructors : bool;
  use_inverse_functions : bool;
  pushdown : bool;
      (** Compile same-database regions to SQL (§4.3-4.4). Off, every
          source access is a full scan evaluated by the middleware engine —
          the reference configuration of the differential harness. *)
  cost_based : bool;
      (** Statistics-driven plan selection via {!Cost_model}: join method
          (NL vs index-NL vs PP-k) by estimated cost, PP-k [k]/[prefetch]
          from the outer-cardinality/latency tradeoff (overriding the
          [ppk_k]/[ppk_prefetch] knobs), static source ordering, and the
          pushdown transfer-volume gate. Off, the fixed structural
          heuristics and the configured knobs apply unchanged. All
          choices are result-identical; only cost differs. Default on. *)
  ppk_k : int;  (** PP-k block size; the paper's default is 20. *)
  ppk_prefetch : int;
      (** How many PP-k block queries may be in flight on the worker pool
          ahead of the block being consumed (pipelined parameter passing).
          0 = strictly sequential roundtrips (the pre-pipelining
          behaviour); default 1. Results are identical at any depth. *)
  view_cache_size : int;
  sort_budget_rows : int option;
      (** In-memory row budget for the executor's blocking operators
          (ORDER BY, the unclustered GROUP BY fallback). [Some n] routes
          them through {!Extsort}: runs of [n] rows spill to disk and
          merge back as a stream, keeping peak resident rows bounded by
          the budget; [None] (the default) sorts in memory. Results are
          byte-identical either way. The default is taken from the
          [ALDSP_SORT_BUDGET] environment variable when set to a positive
          integer (the CI forced-spill lever); {!reference_options} always
          uses [None]. *)
}

val default_options : options

val options_fingerprint : options -> string
(** A stable serialization of every option field, used (with the query
    text and {!Metadata.generation}) as the {!Plan_cache} key. *)

val reference_options : options
(** The differential-testing baseline (see {!Aldsp_check}): no view
    inlining, no join introduction, no constructor elimination, no inverse
    functions, no SQL pushdown, PP-k degenerate and strictly sequential.
    Every knob the paper claims changes only cost is switched off, so a
    server built on these options is the oracle that optimized
    configurations are compared against byte-for-byte. *)

type t

val create : ?options:options -> Metadata.t -> t

val options : t -> options

val optimize : t -> Cexpr.t -> Cexpr.t * Rewrite.stats
(** The main (pre-pushdown) rewrite pipeline. *)

val select_methods : t -> Cexpr.t -> Cexpr.t
(** Post-pushdown pass: pick join methods (PP-k / index nested loop /
    nested loop) and mark pre-clustered group-bys. *)

val reorder_by_observed_cost : t -> Observed.t -> Cexpr.t -> Cexpr.t
(** The paper's §9 roadmap item: using only {e observed} source behaviour
    (no static cost model), reorder adjacent independent source iterations
    so the branch minimizing [latency + cardinality x inner-latency] runs
    as the outer. Applied only under FLWORs whose order-by re-establishes
    result order, so it is semantics-preserving. Run before join
    introduction. *)

val reorder_sources : t -> ?observed:Observed.t -> Cexpr.t -> Cexpr.t
(** Statistics-driven source ordering (the cost-based generalization of
    {!reorder_by_observed_cost}): the same adjacent-independent-pair swap
    under order-by-protected FLWORs, but costed statically from declared
    latency profiles and exact row counts, falling back to [observed]
    samples for sources the statistics layer cannot price. Swaps only on
    a strict cost improvement, so zero-latency catalogs are left
    untouched. *)

val cleanup : t -> Cexpr.t -> Cexpr.t
(** Query-independent simplification (let substitution, dead code,
    constructor elimination) — run after pushdown to tidy residual
    middleware expressions. *)

val optimize_view : t -> Aldsp_xml.Qname.t -> Cexpr.t -> Cexpr.t
(** The view sub-optimizer: query-independent optimization of a function
    body, memoized per function name with LRU eviction (§4.2). *)

val view_cache_hits : t -> int
val view_cache_misses : t -> int

val equi_join_keys :
  right_vars:Cexpr.var list -> Cexpr.t -> ((Cexpr.t * Cexpr.t) list * Cexpr.t list) option
(** Splits a join predicate into (left expr = right expr) pairs plus
    residual conjuncts; [None] when no equi-key exists. Shared with the
    runtime's index-nested-loop implementation. *)
