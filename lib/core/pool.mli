(** A bounded worker pool: the scheduler under every asynchronous source
    roundtrip (§6's asynchronous adaptors).

    The paper's runtime hides source latency by letting adaptor calls
    proceed while the query thread continues. This pool gives that overlap
    a fixed thread budget: tasks queue, a configured number of workers
    drain them, and the queue depth / busy-worker high-water marks are
    observable so the overlap win is measurable. Consumers hold
    {!Future.t}s and decide when to block, so result ordering stays with
    the consumer even when tasks complete out of order.

    Workers are started lazily on first {!submit} and never exceed the
    configured bound. {!await} is deadlock-safe for nested submissions:
    a waiter whose future is not yet resolved helps drain the queue
    instead of blocking while work is still unscheduled. *)

type t

type stats = {
  st_workers : int;  (** Configured thread bound. *)
  st_submitted : int;
  st_completed : int;
  st_queue_depth : int;  (** Tasks queued right now. *)
  st_max_queue_depth : int;  (** High-water mark since creation/reset. *)
  st_busy : int;  (** Workers currently running a task. *)
  st_max_busy : int;  (** Never exceeds [st_workers]. *)
  st_helped : int;
      (** Tasks executed by awaiting threads (deadlock-avoidance helping)
          rather than by workers; not counted in [st_busy]/[st_max_busy]. *)
}

val create : ?workers:int -> unit -> t
(** [workers] defaults to the machine's core count
    ([Domain.recommended_domain_count ()]) and is clamped to at least 1;
    pass it explicitly to pin a size (tests, benches, the reference
    configuration). *)

val size : t -> int

val submit : t -> (unit -> 'a) -> 'a Future.t
(** Enqueues the task; a worker will resolve the returned future. The
    calling thread's ambient {!Cancel.t} token is captured and installed
    in whichever thread runs the task, so per-query deadlines follow the
    work onto the pool. *)

val await : t -> 'a Future.t -> 'a
(** Like {!Future.await} but helps execute queued tasks while the awaited
    future is unresolved, so a saturated pool cannot deadlock on nested
    [submit]/[await] chains. *)

val is_worker_thread : t -> bool
(** Whether the calling thread is one of this pool's workers. *)

val pipeline : t -> depth:int -> ('a -> 'b) -> 'a Seq.t -> 'b Seq.t
(** Ordered prefetching map: while the consumer holds result [n], up to
    [depth] further applications of [f] are already in flight on the pool
    (plus the one being awaited). Results are emitted strictly in input
    order regardless of completion order, and the input sequence is forced
    only on the consumer's thread. [depth <= 0] degenerates to a plain
    sequential {!Seq.map}. *)

val stats : t -> stats
val reset_stats : t -> unit
(** Clears the counters and high-water marks (not the queue). *)

val shutdown : ?wait:bool -> t -> unit
(** Asks the workers to exit once the queue drains (terminal; idempotent
    — repeated and concurrent calls are safe, including while workers are
    blocked inside a backend roundtrip: they finish the task in hand and
    exit). [~wait:true] additionally joins the worker threads before
    returning, so in-flight work is complete on return; a worker calling
    [shutdown ~wait:true] on its own pool skips joining itself. Tasks
    submitted afterwards still complete correctly — {!await} helps drain
    them on the calling thread — they just stop overlapping. Long
    fuzzing/benchmark drivers that create many pools call this so worker
    threads do not accumulate. *)

val default : unit -> t
(** The process-wide shared pool (sized from the machine's core count,
    clamped to [4, 16]), created on first use. Servers without an explicit
    pool share it. *)
