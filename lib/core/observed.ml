open Aldsp_xml

type sample = {
  calls : int;
  mean_latency : float;
  mean_cardinality : float;
  total_latency : float;
}

type t = {
  samples : (Qname.t, sample) Hashtbl.t;
  lock : Mutex.t;
  (* async-orchestration counters (worker pool, PP-k pipelining) *)
  mutable roundtrips : int;
  mutable overlap_saved : float;
  mutable source_wall : float;
  (* statements served from another session's in-flight work *)
  mutable coalesced : int;
}

let create () =
  { samples = Hashtbl.create 32;
    lock = Mutex.create ();
    roundtrips = 0;
    overlap_saved = 0.;
    source_wall = 0.;
    coalesced = 0 }

let locked t f =
  Mutex.lock t.lock;
  let r = f () in
  Mutex.unlock t.lock;
  r

let alpha = 0.2

let record t fn ~latency ~cardinality =
  let card = float_of_int cardinality in
  locked t (fun () ->
      let sample =
        match Hashtbl.find_opt t.samples fn with
        | None ->
          { calls = 1;
            mean_latency = latency;
            mean_cardinality = card;
            total_latency = latency }
        | Some s ->
          { calls = s.calls + 1;
            mean_latency =
              ((1. -. alpha) *. s.mean_latency) +. (alpha *. latency);
            mean_cardinality =
              ((1. -. alpha) *. s.mean_cardinality) +. (alpha *. card);
            total_latency = s.total_latency +. latency }
      in
      t.source_wall <- t.source_wall +. latency;
      Hashtbl.replace t.samples fn sample)

let record_roundtrip t ~wall =
  locked t (fun () ->
      t.roundtrips <- t.roundtrips + 1;
      t.source_wall <- t.source_wall +. wall)

let record_overlap t saved =
  if saved > 0. then
    locked t (fun () -> t.overlap_saved <- t.overlap_saved +. saved)

let record_coalesced t = locked t (fun () -> t.coalesced <- t.coalesced + 1)

let observed t fn = locked t (fun () -> Hashtbl.find_opt t.samples fn)

let roundtrips t = locked t (fun () -> t.roundtrips)
let coalesced_hits t = locked t (fun () -> t.coalesced)
let overlap_saved t = locked t (fun () -> t.overlap_saved)
let source_wall t = locked t (fun () -> t.source_wall)

(* per-item processing charge: 2us — small against any real source call,
   enough to order two in-memory sources by cardinality *)
let per_item_charge = 2e-6

let cost t fn =
  Option.map
    (fun s -> s.mean_latency +. (per_item_charge *. s.mean_cardinality))
    (observed t fn)

let wrapper t fd args compute =
  let t0 = Unix.gettimeofday () in
  let result = compute () in
  record t fd.Metadata.fd_name
    ~latency:(Unix.gettimeofday () -. t0)
    ~cardinality:(List.length result);
  ignore args;
  result

let report t =
  locked t (fun () ->
      Hashtbl.fold (fun fn s acc -> (fn, s) :: acc) t.samples [])
  |> List.sort (fun (_, a) (_, b) ->
         Float.compare b.mean_latency a.mean_latency)
