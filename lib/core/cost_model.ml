open Aldsp_relational
module C = Cexpr
module Sql = Sql_ast

(* ------------------------------------------------------------------ *)
(* Constants *)

(* Middleware cost of materializing one shipped row, calibrated against
   the PP-k bench sweep: with Total(k) ~ outer*latency/k + outer*beta*k
   the observed optimum (k in the low tens at 0.5 ms latency) pins beta
   near 2 microseconds per row. *)
let row_cost = 2e-6

(* CPU floor of issuing one statement even on a zero-latency source:
   SQL printing, parameter binding, result decoding. *)
let roundtrip_overhead = 5e-5

(* Selectivity of a predicate the model cannot see through. *)
let selection_fraction = 3

type profile = { p_latency : float; p_row_cost : float }

let local_profile = { p_latency = 0.; p_row_cost = row_cost }

let db_profile db =
  let latency, per_row = Database.cost_profile db in
  { p_latency = latency; p_row_cost = per_row }

(* ------------------------------------------------------------------ *)
(* Source resolution *)

let resolve registry fn =
  match Metadata.resolve_call registry fn 0 with
  | Some fd -> Some fd
  | None -> Metadata.resolve_call registry fn 1

let source_profile registry fn =
  match resolve registry fn with
  | Some { Metadata.fd_impl = Metadata.External src; _ } -> (
    match src with
    | Metadata.Relational_table { db; _ } | Metadata.Stored_procedure { db; _ }
      ->
      Some (db_profile db)
    | Metadata.Service_op { service; _ } ->
      Some
        { p_latency = service.Aldsp_services.Web_service.latency;
          p_row_cost = row_cost }
    | Metadata.File_docs _ | Metadata.External_custom _ -> Some local_profile)
  | _ -> None

(* Estimated items yielded by one call of an arity-0 source function:
   exact row counts for tables and file/CSV sources, unknown otherwise. *)
let source_cardinality registry fn =
  match Metadata.resolve_call registry fn 0 with
  | Some { Metadata.fd_impl = Metadata.External src; _ } -> (
    match src with
    | Metadata.Relational_table { db; table; _ } -> (
      match Database.find_table db table with
      | Ok t -> Some (Table.row_count t)
      | Error _ -> None)
    | Metadata.File_docs docs -> Some (List.length docs)
    | Metadata.Stored_procedure _ | Metadata.Service_op _
    | Metadata.External_custom _ ->
      None)
  | _ -> None

(* Expected cost of iterating a source once: one roundtrip plus shipping
   every row. Usable even when the cardinality is unknown (cost of the
   known part); [None] when the function is not a registered source. *)
let source_cost registry fn =
  match source_profile registry fn with
  | None -> None
  | Some p ->
    let rows =
      match source_cardinality registry fn with Some n -> float n | None -> 0.
    in
    Some (p.p_latency +. roundtrip_overhead +. (rows *. p.p_row_cost))

(* ------------------------------------------------------------------ *)
(* Relational region estimates *)

let rel_table registry (r : C.sql_access) =
  match Metadata.find_database registry r.C.db with
  | None -> None
  | Some db -> (
    match r.C.select.Sql.from with
    | Sql.Table { table; _ } -> (
      match Database.find_table db table with
      | Ok t -> Some (db, t)
      | Error _ -> None)
    | Sql.Derived _ -> None)

(* Rows one execution of a pushed region ships. Unparameterized: the
   table's (possibly WHERE-filtered) rows. Parameterized (a PP-k probe
   block): probes land on key columns, so the per-probe match estimate is
   rows over the best single-column NDV — exact 1 for a unique key. *)
let rel_cardinality registry (r : C.sql_access) =
  match rel_table registry r with
  | None -> None
  | Some (_, t) ->
    let rows = Table.row_count t in
    let filtered =
      match r.C.select.Sql.where with
      | Some _ when r.C.sql_params = [] ->
        max 1 (rows / selection_fraction)
      | _ -> rows
    in
    if r.C.sql_params = [] then Some filtered
    else
      let best_ndv =
        List.fold_left
          (fun acc idx ->
            match Index.columns idx with
            | [ _ ] -> max acc (Index.distinct_keys idx)
            | _ -> acc)
          1 (Table.indexes t)
      in
      Some (max 1 (rows / max 1 best_ndv))

(* ------------------------------------------------------------------ *)
(* Cardinality over core expressions *)

let rec expr_cardinality registry e =
  match e with
  | C.Empty -> Some 0
  | C.Const _ | C.Elem _ -> Some 1
  | C.Seq es ->
    List.fold_left
      (fun acc e ->
        match (acc, expr_cardinality registry e) with
        | Some a, Some b -> Some (a + b)
        | _ -> None)
      (Some 0) es
  | C.Call { fn; args = [] } -> source_cardinality registry fn
  | C.Flwor { clauses; return_ } -> (
    match (clauses_cardinality registry clauses, expr_cardinality registry return_) with
    | Some tuples, Some per_tuple -> Some (tuples * per_tuple)
    | Some tuples, None -> Some tuples
    | None, _ -> None)
  | _ -> None

(* Binding tuples a clause pipeline emits. Joins use the key/foreign-key
   estimate max(outer, inner): exact when the join key is unique on one
   side, which introspected equi joins (PK-FK navigation) always are. *)
and clauses_cardinality registry clauses =
  let join x f = match x with Some v -> f v | None -> None in
  List.fold_left
    (fun acc clause ->
      join acc (fun tuples ->
          match clause with
          | C.For { source; _ } ->
            join (expr_cardinality registry source) (fun n -> Some (tuples * n))
          | C.Let _ -> Some tuples
          | C.Where _ -> Some (max 1 (tuples / selection_fraction))
          | C.Group _ -> Some tuples
          | C.Order _ -> Some tuples
          | C.Rel r ->
            join (rel_cardinality registry r) (fun n -> Some (tuples * n))
          | C.Join { right; export; _ } -> (
            match export with
            | C.Grouped _ -> Some tuples
            | C.Bindings ->
              join (clauses_cardinality registry right) (fun inner ->
                  Some (max tuples inner)))))
    (Some 1) clauses

(* ------------------------------------------------------------------ *)
(* PP-k parameter choice *)

(* Total(k) ~ outer*latency/k (roundtrips) + outer*row_cost*k (block
   assembly and disjunct decoding) is minimized at k* = sqrt(latency /
   row_cost); clamp to [5, 50] and never exceed the outer estimate. *)
let k_min = 5
let k_max = 50

let choose_k ~outer ~latency =
  let raw =
    if latency <= 0. then 0.
    else Float.sqrt (latency /. row_cost)
  in
  let k = min k_max (max k_min (int_of_float (Float.round raw))) in
  match outer with Some o when o > 0 -> max 1 (min k o) | _ -> k

let choose_prefetch ~latency ~default =
  if latency >= 0.001 then 2 else if latency > 0. then 1 else default

(* ------------------------------------------------------------------ *)
(* Join-method and pushdown-shape costing *)

let nested_loop_cost ~outer ~inner = outer *. inner *. row_cost

(* probe + expected matches per outer tuple *)
let index_nl_cost ~outer ~matches = outer *. (1. +. matches) *. row_cost

(* Parameterizing a join right side replaces one whole-table ship with
   ceil(outer/k) probe-block roundtrips that ship only matching rows.
   Beneficial unless the probe roundtrips dwarf the single shipment —
   the 2x margin keeps marginal cases on the parameterized (PP-k) path,
   which overlaps latency that whole-table shipping cannot. *)
let parameterize_beneficial ~outer ~inner_rows ~latency =
  match (outer, inner_rows) with
  | Some o, Some i when o > 0 ->
    let k = choose_k ~outer:(Some o) ~latency in
    let blocks = float_of_int ((o + k - 1) / k) in
    let param =
      (blocks *. (latency +. roundtrip_overhead)) +. (float_of_int o *. row_cost)
    in
    let ship =
      latency +. roundtrip_overhead +. (float_of_int i *. row_cost)
    in
    param <= 2. *. ship
  | _ -> true

(* ------------------------------------------------------------------ *)
(* Misestimation *)

let misestimate ~est ~actual =
  if est <= 0 || actual <= 0 then 1.
  else
    let e = float_of_int est and a = float_of_int actual in
    Float.max (e /. a) (a /. e)
