(** Token streams and the conversions between the streamed and materialized
    forms of XQuery Data Model values.

    Streams are lazy ({!Stdlib.Seq.t}); an adaptor can feed tokens
    incrementally and operators that do not need materialization (maps,
    filters, the pre-clustered group operator) consume them in constant
    memory. *)

open Aldsp_xml

type t = Token.t Seq.t

val empty : t
val append : t -> t -> t
val concat : t list -> t

val of_node : Node.t -> t
(** Streams a node tree: [Start_element], attributes, content tokens,
    [End_element]. Typed leaves become {!Token.Atom} tokens. *)

val of_item : Item.t -> t
val of_sequence : Item.sequence -> t

val counted : (Token.t -> unit) -> t -> t
(** [counted f s] is [s] with [f] invoked on every token as it is pulled —
    streaming instrumentation (the server counts tokens handed to
    {!val-serialize_chunks}-style consumers without forcing the stream). *)

val to_items : t -> (Item.sequence, string) result
(** Reassembles items from a stream. Fails on unbalanced element or tuple
    delimiters. [Boxed] tokens are transparently unboxed. *)

val to_nodes_exn : t -> Node.t list
(** Like {!to_items} restricted to nodes; raises [Invalid_argument] on a
    malformed stream or atomic tokens at top level. *)

val box : t -> Token.t
(** Packs a finite stream into a single {!Token.Boxed} token. *)

val unbox : Token.t -> t
(** Inverse of {!box}; a non-boxed token becomes a singleton stream. *)

val length : t -> int
(** Number of tokens (forces the stream). *)

val serialize_chunks : t -> string Seq.t
(** Incremental XML serialization: one text chunk per token, produced
    lazily — the stream is serialized without first materializing a tree
    (the server-side redirect-to-file API of §2.2). Tuple delimiters
    render as processing-instruction-like markers and [Boxed] tokens are
    unboxed transparently. Raises [Invalid_argument] on a malformed
    stream when forced. *)

val serialize_to : Buffer.t -> t -> unit
(** Drains {!serialize_chunks} into a buffer. *)

val pp : Format.formatter -> t -> unit
