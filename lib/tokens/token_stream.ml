open Aldsp_xml

type t = Token.t Seq.t

let empty = Seq.empty
let append = Seq.append
let concat streams = List.fold_right Seq.append streams Seq.empty

let rec of_node node () =
  match node with
  | Node.Text s -> Seq.Cons (Token.Text s, Seq.empty)
  | Node.Atom a -> Seq.Cons (Token.Atom a, Seq.empty)
  | Node.Element e ->
    let attrs =
      List.to_seq e.Node.attributes
      |> Seq.map (fun (n, v) -> Token.Attribute (n, v))
    in
    let children = Seq.concat_map of_node (List.to_seq e.Node.children) in
    Seq.Cons
      ( Token.Start_element e.Node.name,
        Seq.append attrs (Seq.append children (Seq.return Token.End_element)) )

let of_item = function
  | Item.Atom a -> Seq.return (Token.Atom a)
  | Item.Node n -> of_node n

let of_sequence items = Seq.concat_map of_item (List.to_seq items)

let counted f stream =
  Seq.map
    (fun tok ->
      f tok;
      tok)
    stream

exception Malformed of string

(* Reassembly uses an explicit cursor so element nesting is a recursion over
   the stream rather than a stack data structure. *)
let to_items stream =
  let rec items acc seq =
    match seq () with
    | Seq.Nil -> (List.rev acc, Seq.empty)
    | Seq.Cons (tok, rest) -> (
      match tok with
      | Token.Atom a -> items (Item.Atom a :: acc) rest
      | Token.Text s -> items (Item.Node (Node.text s) :: acc) rest
      | Token.Start_element name ->
        let node, rest = element name rest in
        items (Item.Node node :: acc) rest
      | Token.End_element -> raise (Malformed "unexpected end-element token")
      | Token.Attribute _ ->
        raise (Malformed "attribute token outside an element")
      | Token.Begin_tuple | Token.End_tuple | Token.Field_separator ->
        raise (Malformed "tuple token in item context")
      | Token.Boxed inner ->
        let inner_items, _ = items [] (Array.to_seq inner) in
        items (List.rev_append (List.rev inner_items) acc) rest)
  and element name seq =
    let rec attrs acc seq =
      match seq () with
      | Seq.Cons (Token.Attribute (n, v), rest) -> attrs ((n, v) :: acc) rest
      | _ -> (List.rev acc, seq)
    in
    let attributes, seq = attrs [] seq in
    let rec content acc seq =
      match seq () with
      | Seq.Nil -> raise (Malformed "unterminated element")
      | Seq.Cons (Token.End_element, rest) -> (List.rev acc, rest)
      | Seq.Cons (Token.Atom a, rest) -> content (Node.atom a :: acc) rest
      | Seq.Cons (Token.Text s, rest) -> content (Node.text s :: acc) rest
      | Seq.Cons (Token.Start_element n, rest) ->
        let node, rest = element n rest in
        content (node :: acc) rest
      | Seq.Cons (Token.Attribute _, _) ->
        raise (Malformed "attribute token after element content began")
      | Seq.Cons ((Token.Begin_tuple | Token.End_tuple | Token.Field_separator), _)
        ->
        raise (Malformed "tuple token inside element content")
      | Seq.Cons (Token.Boxed inner, rest) ->
        let inner_nodes, _ = content [] (Array.to_seq inner) in
        content (List.rev_append (List.rev inner_nodes) acc) rest
    in
    let children, rest = content [] seq in
    (Node.element ~attributes name children, rest)
  in
  match items [] stream with
  | result, _ -> Ok result
  | exception Malformed msg -> Error msg

let to_nodes_exn stream =
  match to_items stream with
  | Error msg -> invalid_arg msg
  | Ok items ->
    List.map
      (function
        | Item.Node n -> n
        | Item.Atom _ -> invalid_arg "atomic token at node level")
      items

let box stream = Token.Boxed (Array.of_seq stream)

let unbox = function
  | Token.Boxed tokens -> Array.to_seq tokens
  | token -> Seq.return token

let length stream = Seq.length stream

(* Incremental serialization: a small state machine over the token stream
   tracking whether the current element's start tag is still open (so
   attributes can be appended) and the stack of open element names. *)
let serialize_chunks stream =
  let escape = Node.escape_text in
  (* state: (pending start-tag name, open-element stack) *)
  let rec step state seq () =
    let in_tag, stack = state in
    match seq () with
    | Seq.Nil -> (
      match (in_tag, stack) with
      | Some name, rest ->
        (* degenerate: unterminated element — close what we can *)
        Seq.Cons ("/>", step (None, rest) Seq.empty) |> fun c -> ignore name; c
      | None, _ :: _ -> invalid_arg "serialize: unterminated element"
      | None, [] -> Seq.Nil)
    | Seq.Cons (tok, rest) -> (
      let close_tag k =
        match in_tag with
        | Some name -> Seq.Cons (">", fun () -> k (None, name :: stack))
        | None -> k (None, stack)
      in
      match tok with
      | Token.Start_element n -> (
        let open_next state = step (Some n.Aldsp_xml.Qname.local, snd state) rest () in
        match in_tag with
        | Some _ -> close_tag (fun state -> Seq.Cons ("<" ^ n.Aldsp_xml.Qname.local, fun () -> open_next state))
        | None ->
          Seq.Cons ("<" ^ n.Aldsp_xml.Qname.local, fun () -> open_next (None, stack)))
      | Token.Attribute (n, v) -> (
        match in_tag with
        | Some _ ->
          Seq.Cons
            ( Printf.sprintf " %s=\"%s\"" n.Aldsp_xml.Qname.local
                (escape (Atomic.to_string v)),
              step state rest )
        | None -> invalid_arg "serialize: attribute outside a start tag")
      | Token.End_element -> (
        match in_tag with
        | Some _ -> Seq.Cons ("/>", step (None, stack) rest)
        | None -> (
          match stack with
          | name :: up -> Seq.Cons ("</" ^ name ^ ">", step (None, up) rest)
          | [] -> invalid_arg "serialize: unbalanced end-element"))
      | Token.Atom a ->
        close_tag (fun state ->
            Seq.Cons (escape (Atomic.to_string a), step state rest))
      | Token.Text s ->
        close_tag (fun state -> Seq.Cons (escape s, step state rest))
      | Token.Begin_tuple ->
        close_tag (fun state -> Seq.Cons ("<?tuple?>", step state rest))
      | Token.End_tuple ->
        close_tag (fun state -> Seq.Cons ("<?end-tuple?>", step state rest))
      | Token.Field_separator ->
        close_tag (fun state -> Seq.Cons ("<?field?>", step state rest))
      | Token.Boxed inner ->
        step state (Seq.append (Array.to_seq inner) rest) ())
  in
  step (None, []) stream

let serialize_to buf stream =
  Seq.iter (Buffer.add_string buf) (serialize_chunks stream)

let pp ppf stream =
  Format.pp_print_seq ~pp_sep:Format.pp_print_space Token.pp ppf stream
