type t = {
  deadline : float option;  (* absolute, Unix.gettimeofday-based *)
  mutable flagged : bool;
}

exception Cancelled of string

let none = { deadline = None; flagged = false }

let make ?deadline () = { deadline; flagged = false }

let with_deadline seconds =
  make ~deadline:(Unix.gettimeofday () +. seconds) ()

(* The flag is a single mutable bool: writes are atomic under the runtime
   lock and the flag is monotonic, so readers need no mutex — a stale
   read only delays cancellation by one check interval. *)
let cancel t = if t != none then t.flagged <- true

let past_deadline t =
  match t.deadline with
  | None -> false
  | Some d -> Unix.gettimeofday () >= d

let cancelled t = t.flagged || past_deadline t

let remaining t =
  match t.deadline with
  | None -> None
  | Some d -> Some (Float.max 0. (d -. Unix.gettimeofday ()))

let check t =
  if t.flagged then raise (Cancelled "cancelled")
  else if past_deadline t then raise (Cancelled "deadline exceeded")

(* Ambient per-thread token: a table keyed by Thread.id. Entries exist
   only while a [with_token] scope is live, so the table stays small
   (one entry per active session/worker). *)
let ambient : (int, t) Hashtbl.t = Hashtbl.create 32
let ambient_mutex = Mutex.create ()

let current () =
  Mutex.lock ambient_mutex;
  let tok =
    match Hashtbl.find_opt ambient (Thread.id (Thread.self ())) with
    | Some tok -> tok
    | None -> none
  in
  Mutex.unlock ambient_mutex;
  tok

let check_current () = check (current ())

let with_token tok f =
  let id = Thread.id (Thread.self ()) in
  Mutex.lock ambient_mutex;
  let previous = Hashtbl.find_opt ambient id in
  Hashtbl.replace ambient id tok;
  Mutex.unlock ambient_mutex;
  Fun.protect f ~finally:(fun () ->
      Mutex.lock ambient_mutex;
      (match previous with
      | Some prev -> Hashtbl.replace ambient id prev
      | None -> Hashtbl.remove ambient id);
      Mutex.unlock ambient_mutex)

(* Chunked interruptible sleep. 2ms chunks bound cancellation latency
   while costing nothing measurable against the multi-ms simulated
   backend latencies they interrupt. *)
let chunk = 0.002

let sleepf seconds =
  let tok = current () in
  if tok == none then Unix.sleepf seconds
  else begin
    check tok;
    let until = Unix.gettimeofday () +. seconds in
    let rec go () =
      let left = until -. Unix.gettimeofday () in
      if left > 0. then begin
        Unix.sleepf (Float.min chunk left);
        check tok;
        go ()
      end
    in
    go ()
  end
