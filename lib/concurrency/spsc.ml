(* Bounded single-producer/single-consumer hand-off queue.

   The streaming serving layer pushes result tokens through one of these:
   the producer (the session's evaluation thread) blocks whenever the
   consumer lags [capacity] tokens behind — that blocking *is* the
   backpressure that keeps a slow client from ballooning server memory —
   and the consumer blocks while the queue is empty.

   Termination is explicit and one-way: the producer [close]s on a clean
   end-of-stream or [fail]s with the error that aborted it; the consumer
   [abort]s to release a producer mid-stream (the next [push] returns
   false). A producer blocked in [push] under an ambient {!Cancel} token
   polls that token, so a session deadline or explicit cancel aborts the
   producer even while the consumer never drains another token. *)

type 'a t = {
  capacity : int;
  q : 'a Queue.t;
  mu : Mutex.t;
  not_full : Condition.t;
  not_empty : Condition.t;
  mutable closed : bool;  (* producer finished cleanly *)
  mutable failed : string option;  (* producer aborted with an error *)
  mutable aborted : bool;  (* consumer walked away *)
  mutable peak : int;  (* high-water occupancy, for the bounded-buffer pin *)
}

let create ~capacity =
  { capacity = max 1 capacity;
    q = Queue.create ();
    mu = Mutex.create ();
    not_full = Condition.create ();
    not_empty = Condition.create ();
    closed = false;
    failed = None;
    aborted = false;
    peak = 0 }

let capacity t = t.capacity

let peak_occupancy t =
  Mutex.lock t.mu;
  let p = t.peak in
  Mutex.unlock t.mu;
  p

(* Producer side. Blocks while the queue is full: plain condvar wait
   without an ambient cancellation token, released-lock chunked polling
   with one (the same idiom as the admission/batch waits, so a fired
   token aborts a blocked producer within ~1ms). *)
let push t x =
  Mutex.lock t.mu;
  let rec wait () =
    if t.aborted then false
    else if Queue.length t.q < t.capacity then true
    else begin
      let tok = Cancel.current () in
      if tok == Cancel.none then Condition.wait t.not_full t.mu
      else begin
        Mutex.unlock t.mu;
        (match Cancel.check tok with
        | () -> ()
        | exception e ->
          (* lock already released: the exception may propagate as-is *)
          raise e);
        Thread.delay 0.0005;
        Mutex.lock t.mu
      end;
      wait ()
    end
  in
  (* a Cancelled raised by [wait] escapes with the lock released (the
     check runs in the unlocked section); the producer's cleanup is
     expected to [fail] the queue so the consumer unblocks *)
  match wait () with
  | false ->
    Mutex.unlock t.mu;
    false
  | true ->
    Queue.push x t.q;
    if Queue.length t.q > t.peak then t.peak <- Queue.length t.q;
    Condition.signal t.not_empty;
    Mutex.unlock t.mu;
    true

let close t =
  Mutex.lock t.mu;
  t.closed <- true;
  Condition.broadcast t.not_empty;
  Mutex.unlock t.mu

let fail t msg =
  Mutex.lock t.mu;
  if t.failed = None then t.failed <- Some msg;
  t.closed <- true;
  Condition.broadcast t.not_empty;
  Mutex.unlock t.mu

(* Consumer side. Buffered tokens drain before a failure is reported:
   the producer pushed them before it died, but a streaming consumer has
   typically forwarded earlier tokens already, so late losers are the
   protocol either way — the oracle only pins successful runs. *)
let pop t =
  Mutex.lock t.mu;
  let rec wait () =
    match Queue.take_opt t.q with
    | Some x ->
      Condition.signal t.not_full;
      `Item x
    | None -> (
      match t.failed with
      | Some msg -> `Failed msg
      | None ->
        if t.closed then `Closed
        else begin
          Condition.wait t.not_empty t.mu;
          wait ()
        end)
  in
  let r = wait () in
  Mutex.unlock t.mu;
  r

let abort t =
  Mutex.lock t.mu;
  t.aborted <- true;
  Queue.clear t.q;
  Condition.broadcast t.not_full;
  Mutex.unlock t.mu
