(** Bounded single-producer/single-consumer hand-off queue.

    The streaming serving layer's delivery buffer: the producer blocks
    once [capacity] elements are buffered (backpressure), the consumer
    blocks while the queue is empty. Termination is explicit — the
    producer {!close}s or {!fail}s, the consumer may {!abort} to release
    the producer mid-stream. *)

type 'a t

(** [create ~capacity] makes an empty queue holding at most
    [max 1 capacity] elements. *)
val create : capacity:int -> 'a t

val capacity : 'a t -> int

(** High-water occupancy since creation. Never exceeds {!capacity} —
    this is the bounded-buffer guarantee the tests pin. *)
val peak_occupancy : 'a t -> int

(** Producer: enqueue one element, blocking while the queue is full.
    Returns [false] once the consumer has {!abort}ed (the element is
    dropped and the producer should stop). A producer blocked here under
    an ambient {!Cancel} token polls it and lets {!Cancel.Cancelled}
    escape, so a session deadline aborts a producer stuck behind a
    stalled consumer; the producer's cleanup should then {!fail} the
    queue. *)
val push : 'a t -> 'a -> bool

(** Producer: clean end-of-stream. Buffered elements remain readable. *)
val close : 'a t -> unit

(** Producer: abort the stream with an error. Buffered elements drain
    first, then the consumer sees [`Failed]. The first failure wins. *)
val fail : 'a t -> string -> unit

(** Consumer: dequeue the next element, blocking while the queue is
    empty and the producer is still live. *)
val pop : 'a t -> [ `Item of 'a | `Closed | `Failed of string ]

(** Consumer: stop consuming; drops buffered elements and releases a
    blocked producer, whose next {!push} returns [false]. *)
val abort : 'a t -> unit
