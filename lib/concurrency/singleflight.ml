(* Keyed single-flight coalescing. One mutex + condvar for the whole
   registry: flights are short (a backend roundtrip), contention is on
   the order of the session count, and a single condvar broadcast on
   completion keeps the state machine simple. *)

type state = Pending | Landed | Broken

type 'v entry = {
  mutable st : state;
  mutable value : 'v option;  (* Some iff st = Landed *)
}

type 'v t = {
  mutex : Mutex.t;
  done_ : Condition.t;
  table : (string, 'v entry) Hashtbl.t;
  mutable led_count : int;
  mutable joined_count : int;
  mutable broken_count : int;
}

type 'v outcome = Led of 'v | Joined of 'v

let create () =
  { mutex = Mutex.create ();
    done_ = Condition.create ();
    table = Hashtbl.create 32;
    led_count = 0;
    joined_count = 0;
    broken_count = 0 }

(* Waits (lock held on entry and exit) until [e] leaves Pending. The
   inert token blocks on the condvar; a real token may be fired from a
   thread that cannot signal our condvar, so it polls in short
   lock-released sleeps, re-raising Cancelled without the lock held
   (same pattern as the serving layer's admission wait). *)
let rec wait_entry t e =
  if e.st = Pending then begin
    let tok = Cancel.current () in
    if tok == Cancel.none then Condition.wait t.done_ t.mutex
    else begin
      Mutex.unlock t.mutex;
      (* raising here aborts only this waiter, with the lock released:
         the flight and the other waiters are untouched *)
      Cancel.check tok;
      Thread.delay 0.001;
      Mutex.lock t.mutex
    end;
    wait_entry t e
  end

let run t key compute =
  Mutex.lock t.mutex;
  let rec attempt () =
    match Hashtbl.find_opt t.table key with
    | None ->
      (* lead: compute outside the lock under the caller's own token *)
      let e = { st = Pending; value = None } in
      Hashtbl.replace t.table key e;
      t.led_count <- t.led_count + 1;
      Mutex.unlock t.mutex;
      (match compute () with
      | v ->
        Mutex.lock t.mutex;
        e.st <- Landed;
        e.value <- Some v;
        Hashtbl.remove t.table key;
        Condition.broadcast t.done_;
        Mutex.unlock t.mutex;
        Led v
      | exception exn ->
        (* rebroadcast the failure: followers holding this entry retry
           (one becomes the new leader) instead of inheriting [exn] *)
        Mutex.lock t.mutex;
        e.st <- Broken;
        t.broken_count <- t.broken_count + 1;
        Hashtbl.remove t.table key;
        Condition.broadcast t.done_;
        Mutex.unlock t.mutex;
        raise exn)
    | Some e -> (
      wait_entry t e;
      match e.st with
      | Landed ->
        let v = Option.get e.value in
        t.joined_count <- t.joined_count + 1;
        Mutex.unlock t.mutex;
        Joined v
      | Broken | Pending -> attempt ())
  in
  attempt ()

let locked t f =
  Mutex.lock t.mutex;
  let r = f () in
  Mutex.unlock t.mutex;
  r

let flights t = locked t (fun () -> Hashtbl.length t.table)
let led t = locked t (fun () -> t.led_count)
let joined t = locked t (fun () -> t.joined_count)
let broken t = locked t (fun () -> t.broken_count)
