(** Keyed single-flight coalescing: when several threads ask for the same
    (expensive, deterministic) computation at the same time, one of them
    — the leader — actually runs it and every concurrent duplicate — the
    followers — waits and shares the leader's value. Nothing is cached:
    an entry lives only while its computation is in flight, so sharing
    never serves a value computed before the caller arrived under a
    different key epoch (callers encode their freshness requirements,
    e.g. a statistics generation, into the key).

    Cancellation rules, designed for the serving layer's deadline tokens:

    - A follower waits under its own ambient {!Cancel} token. If that
      token fires, only the follower aborts (raising
      {!Cancel.Cancelled}); the shared computation and the other waiters
      are untouched.
    - The leader runs the computation under its own ambient token. If the
      leader fails — its deadline fires mid-computation, or the thunk
      raises — the failure is rebroadcast as "flight broken": followers
      do {e not} inherit the exception, they retry, and the first to
      retry becomes the new leader. Deterministic failures are expected
      to be encoded as values (e.g. [Error _] results), which are shared
      like any other value. *)

type 'v t

type 'v outcome =
  | Led of 'v  (** This caller ran the computation. *)
  | Joined of 'v  (** Served from another caller's in-flight run. *)

val create : unit -> 'v t

val run : 'v t -> string -> (unit -> 'v) -> 'v outcome
(** [run t key compute] — become the leader for [key] (running [compute])
    if no flight is up, otherwise wait for the in-flight leader. The wait
    consults the calling thread's ambient {!Cancel} token, polling when
    the token is real so a deadline firing in another thread is observed
    within ~1ms. *)

val flights : 'v t -> int
(** Computations currently in flight (leaders running). *)

val led : 'v t -> int
(** Total computations led (one per actual execution, including broken
    ones). *)

val joined : 'v t -> int
(** Total callers served from someone else's flight — work avoided. *)

val broken : 'v t -> int
(** Leader failures rebroadcast to followers (each triggers retries). *)
