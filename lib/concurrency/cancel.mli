(** Cooperative cancellation tokens carrying per-query deadlines.

    The serving layer ({!Server.submit}) creates one token per admitted
    query; the evaluator, the pool workers and the simulated-latency
    sleeps inside backend adaptors all consult the token of the query
    they are executing on behalf of, so a deadline (or an explicit
    cancel) cuts a query short wherever it happens to be: queued on the
    pool, mid-roundtrip, or sleeping inside a web-service call.

    Propagation is ambient: a token is installed for the current thread
    with {!with_token}, and {!Pool.submit} / {!Future.detach} capture the
    submitting thread's token and re-install it in whichever thread runs
    the task. Checks are time-comparisons (no timer threads), and
    interruptible sleeps poll the token every couple of milliseconds, so
    cancellation latency is bounded without per-query threads. *)

type t
(** A cancellation token: an optional absolute deadline plus a flag for
    explicit cancellation. Immutable deadline; the flag is monotonic. *)

exception Cancelled of string
(** Raised by {!check} (and anything calling it) when the token's
    deadline has passed or {!cancel} was called. The payload names the
    cause ("deadline exceeded" or "cancelled"). Not recoverable: the
    fail-over/timeout adaptors must let it propagate
    (see {!Eval.recoverable_failure}). *)

val none : t
(** The inert token: never cancelled, no deadline. Installed ambient
    state defaults to this, so code outside a session runs unchecked. *)

val make : ?deadline:float -> unit -> t
(** [deadline] is absolute ([Unix.gettimeofday]-based). *)

val with_deadline : float -> t
(** [with_deadline seconds] — a token expiring [seconds] from now. *)

val cancel : t -> unit
(** Flags the token; every thread it is installed in observes the flag at
    its next {!check} or sleep chunk. Idempotent, thread-safe. *)

val cancelled : t -> bool
(** Whether the token is cancelled or past its deadline (a read, never
    raises). *)

val remaining : t -> float option
(** Seconds until the deadline ([Some 0.] if already past), [None] when
    the token has no deadline. *)

val check : t -> unit
(** Raises {!Cancelled} if the token is cancelled or past deadline. *)

(** {2 Ambient (per-thread) token} *)

val current : unit -> t
(** The token installed for the calling thread ({!none} if nothing is
    installed). *)

val check_current : unit -> unit
(** [check (current ())] — the one-liner used at evaluator call sites. *)

val with_token : t -> (unit -> 'a) -> 'a
(** Installs the token for the calling thread for the duration of the
    thunk, restoring the previous token afterwards (exception-safe).
    Nesting keeps the innermost token. *)

val sleepf : float -> unit
(** Interruptible [Unix.sleepf]: sleeps in small chunks, consulting the
    calling thread's ambient token between chunks; raises {!Cancelled}
    promptly (within one chunk) when the token fires mid-sleep. With the
    inert token this is just a sleep. *)
