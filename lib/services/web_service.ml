open Aldsp_xml

type style = Document_literal | Rpc_encoded

type operation = {
  op_name : string;
  input_schema : Schema.element_decl;
  output_schema : Schema.element_decl;
  implementation : Node.t -> (Node.t, string) result;
}

type fault = Fault_ok | Fault_delay of float | Fault_fail | Fault_fail_after of float

type t = {
  service_name : string;
  wsdl_url : string;
  style : style;
  operations : operation list;
  mutable latency : float;
  mutable fail_next : int;
  mutable unavailable : bool;
  mutable schedule : fault list;
  schedule_lock : Mutex.t;
  stats : stats;
}

and stats = { mutable calls : int; mutable failures : int }

let create ?(style = Document_literal) ?(latency = 0.) ~wsdl_url service_name
    operations =
  { service_name; wsdl_url; style; operations; latency; fail_next = 0;
    unavailable = false; schedule = []; schedule_lock = Mutex.create ();
    stats = { calls = 0; failures = 0 } }

let operation ~name ~input ~output implementation =
  { op_name = name; input_schema = input; output_schema = output;
    implementation }

let find_operation t name =
  List.find_opt (fun op -> String.equal op.op_name name) t.operations

let set_schedule t faults =
  Mutex.lock t.schedule_lock;
  t.schedule <- faults;
  Mutex.unlock t.schedule_lock

let schedule_remaining t =
  Mutex.lock t.schedule_lock;
  let n = List.length t.schedule in
  Mutex.unlock t.schedule_lock;
  n

(* Consume the next scripted event, if any; with the worker pool, calls
   complete on many threads, so consumption must be atomic. *)
let take_fault t =
  Mutex.lock t.schedule_lock;
  let f =
    match t.schedule with
    | [] -> None
    | f :: rest ->
      t.schedule <- rest;
      Some f
  in
  Mutex.unlock t.schedule_lock;
  f

(* Counter updates share [schedule_lock] (contention is negligible);
   the latency sleeps are cancellation-aware so a session deadline
   aborts a call mid-"transport wait" instead of sleeping it out. *)
let bump_stats t f =
  Mutex.lock t.schedule_lock;
  f t.stats;
  Mutex.unlock t.schedule_lock

let invoke t op_name input =
  bump_stats t (fun stats -> stats.calls <- stats.calls + 1);
  let fail msg =
    bump_stats t (fun stats -> stats.failures <- stats.failures + 1);
    Error msg
  in
  match find_operation t op_name with
  | None ->
    fail (Printf.sprintf "service %s: no operation %s" t.service_name op_name)
  | Some op -> (
    match Schema.validate op.input_schema input with
    | Error msg ->
      fail (Printf.sprintf "service %s.%s: invalid request: %s" t.service_name op_name msg)
    | Ok typed_input ->
      if t.latency > 0. then Aldsp_concurrency.Cancel.sleepf t.latency;
      let scripted_failure =
        match take_fault t with
        | None | Some Fault_ok -> false
        | Some (Fault_delay d) ->
          if d > 0. then Aldsp_concurrency.Cancel.sleepf d;
          false
        | Some Fault_fail -> true
        | Some (Fault_fail_after d) ->
          if d > 0. then Aldsp_concurrency.Cancel.sleepf d;
          true
      in
      if scripted_failure then
        fail (Printf.sprintf "service %s.%s: scripted transport failure" t.service_name op_name)
      else if t.unavailable then
        fail (Printf.sprintf "service %s is unavailable" t.service_name)
      else if t.fail_next > 0 then begin
        t.fail_next <- t.fail_next - 1;
        fail (Printf.sprintf "service %s.%s: simulated transport failure" t.service_name op_name)
      end
      else
        match op.implementation typed_input with
        | Error msg -> fail (Printf.sprintf "service %s.%s: %s" t.service_name op_name msg)
        | Ok response -> (
          match Schema.validate op.output_schema response with
          | Ok typed -> Ok typed
          | Error msg ->
            fail
              (Printf.sprintf "service %s.%s: response failed validation: %s"
                 t.service_name op_name msg)))

let inject_failures t n = t.fail_next <- n

let set_unavailable t flag = t.unavailable <- flag

let reset_stats t =
  bump_stats t (fun stats ->
      stats.calls <- 0;
      stats.failures <- 0)
