(** Simulated web services — the functional-source substrate.

    Functional sources are sources ALDSP "can only interact with by calling
    specific functions with parameters" (§2.2): web services, Java
    functions, stored procedures. The paper's experiments around slow and
    unavailable sources (§5.4-5.6) depend only on call latency and failure
    behaviour, so this simulator provides WSDL-like operation metadata,
    a pluggable implementation per operation, configurable latency, and
    failure injection. Responses are validated against the declared result
    schema to produce typed token content, as ALDSP does for document-style
    services (§5.3). *)

open Aldsp_xml

type style = Document_literal | Rpc_encoded

(** One scripted per-call event of a fault schedule (§5.4-5.6 experiments):
    succeed normally, succeed after an extra delay, fail immediately, or
    fail after a delay (a stall followed by a transport error). *)
type fault = Fault_ok | Fault_delay of float | Fault_fail | Fault_fail_after of float

type operation = {
  op_name : string;
  input_schema : Schema.element_decl;
  output_schema : Schema.element_decl;
  implementation : Node.t -> (Node.t, string) result;
}

type t = {
  service_name : string;
  wsdl_url : string;  (** Captured in the physical data service's pragma. *)
  style : style;
  operations : operation list;
  mutable latency : float;  (** Seconds of simulated call latency. *)
  mutable fail_next : int;  (** Fail this many upcoming calls. *)
  mutable unavailable : bool;  (** Hard-down: every call fails. *)
  mutable schedule : fault list;
      (** Scripted per-call behaviour; call [n] consumes entry [n]. Use
          {!set_schedule}; consumption is thread-safe. *)
  schedule_lock : Mutex.t;
  stats : stats;
}

and stats = { mutable calls : int; mutable failures : int }

val create :
  ?style:style ->
  ?latency:float ->
  wsdl_url:string ->
  string ->
  operation list ->
  t

val operation :
  name:string ->
  input:Schema.element_decl ->
  output:Schema.element_decl ->
  (Node.t -> (Node.t, string) result) ->
  operation

val invoke : t -> string -> Node.t -> (Node.t, string) result
(** [invoke service op input] runs the 5-step source-invocation protocol of
    §5.3: validate the input against the operation's input schema, simulate
    the wire latency, run the implementation (honouring failure injection),
    validate the response against the output schema (producing typed
    content), and account the call. *)

val find_operation : t -> string -> operation option

val inject_failures : t -> int -> unit
(** The next [n] calls raise a simulated transport error. *)

val set_schedule : t -> fault list -> unit
(** Installs a scripted per-call fault schedule: the [n]-th subsequent call
    consumes the [n]-th entry (extra latency and/or a scripted transport
    failure); once the script is exhausted, calls revert to the service's
    default behaviour. Used by the differential harness to test the
    fail-over/timeout/retry semantics of §5.4-5.6 deterministically. *)

val schedule_remaining : t -> int
(** Entries of the current schedule not yet consumed. *)

val set_unavailable : t -> bool -> unit
val reset_stats : t -> unit
