open Aldsp_relational
open Aldsp_core

let rel_regions plan =
  let acc = ref [] in
  let rec expr e =
    match e with
    | Cexpr.Flwor { clauses; return_ } ->
      List.iter clause clauses;
      expr return_
    | e ->
      ignore
        (Cexpr.map_children
           (fun sub ->
             expr sub;
             sub)
           e)
  and clause = function
    | Cexpr.Rel r ->
      acc := r :: !acc;
      List.iter expr r.Cexpr.sql_params
    | Cexpr.For { source; _ } -> expr source
    | Cexpr.Let { value; _ } -> expr value
    | Cexpr.Where e -> expr e
    | Cexpr.Group { keys; _ } -> List.iter (fun (k, _) -> expr k) keys
    | Cexpr.Order { keys } -> List.iter (fun (k, _) -> expr k) keys
    | Cexpr.Join { right; on_; _ } ->
      List.iter clause right;
      expr on_
  in
  expr plan;
  List.rev !acc

let result_sets_equal (a : Sql_exec.result_set) (b : Sql_exec.result_set) =
  a.Sql_exec.columns = b.Sql_exec.columns && a.Sql_exec.rows = b.Sql_exec.rows

(* [Ok true] = round-tripped, [Ok false] = vendor-gate OK but the
   statement uses features SQL92 cannot express (skipped) *)
let check_region registry (r : Cexpr.sql_access) =
  match Metadata.find_database registry r.Cexpr.db with
  | None -> Error (Printf.sprintf "unknown database %s in plan" r.Cexpr.db)
  | Some db -> (
    let vendor = db.Database.vendor in
    let dialect = Database.vendor_name vendor in
    match Sql_print.select_to_string vendor r.Cexpr.select with
    | exception Sql_print.Unsupported msg ->
      Error
        (Printf.sprintf
           "pushdown emitted a statement the %s dialect cannot express \
            (capability gate missed it): %s"
           dialect msg)
    | _vendor_text -> (
    let dialect = "SQL92" in
    match Sql_print.select_to_string Database.Generic_sql92 r.Cexpr.select with
    | exception Sql_print.Unsupported _ -> Ok false
    | text -> (
      match Sql_parser.parse_select text with
      | Error e ->
        Error
          (Printf.sprintf "emitted %s SQL does not re-parse: %s\nsql: %s"
             dialect e text)
      | Ok reparsed -> (
        (* fixpoint after one normalizing round-trip: print(parse(text))
           must be stable under a further parse+print *)
        let text2 = Sql_print.select_to_string Database.Generic_sql92 reparsed in
        match Sql_parser.parse_select text2 with
        | Error e ->
          Error
            (Printf.sprintf
               "reprinted %s SQL does not re-parse: %s\nsql: %s" dialect e
               text2)
        | Ok reparsed2 ->
          let text3 =
            Sql_print.select_to_string Database.Generic_sql92 reparsed2
          in
          if text2 <> text3 then
            Error
              (Printf.sprintf
                 "%s print/parse/print is not a fixpoint:\nfirst:  \
                  %s\nsecond: %s"
                 dialect text2 text3)
          else
            let n = Sql_ast.param_count (Sql_ast.Query r.Cexpr.select) in
            let params = Array.make n Sql_value.Null in
            (* both sides see identical NULL bindings, so the original
               and re-parsed ASTs must produce the same table *)
            (match
               ( Sql_exec.query db ~params r.Cexpr.select,
                 Sql_exec.query db ~params reparsed )
             with
            | Ok a, Ok b ->
              if result_sets_equal a b then Ok true
              else
                Error
                  (Printf.sprintf
                     "%s round-tripped SQL executes differently\nsql: %s"
                     dialect text)
            | Error e, _ ->
              Error
                (Printf.sprintf "emitted SQL failed to execute: %s\nsql: %s"
                   e text)
            | _, Error e ->
              Error
                (Printf.sprintf
                   "re-parsed SQL failed to execute: %s\nsql: %s" e text))))))

let check_plan registry plan =
  let regions = rel_regions plan in
  let rec go n = function
    | [] -> Ok n
    | r :: rest -> (
      match check_region registry r with
      | Ok true -> go (n + 1) rest
      | Ok false -> go n rest
      | Error e -> Error e)
  in
  go 0 regions

let check_query server q =
  match Server.compile server q with
  | Error ds ->
    Error
      (Printf.sprintf "compile failed: %s"
         (String.concat "; " (List.map Diag.to_string ds)))
  | Ok compiled -> check_plan (Server.registry server) compiled.Server.plan
