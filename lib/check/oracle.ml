open Aldsp_core

type config = {
  workers : int;
  ppk_k : int;
  ppk_prefetch : int;
  indexes : bool;
  cost_based : bool;
  spill : bool;
}

(* the subject's forced budget when [spill] is on: tiny, so even the
   shrunk scenarios' sorts overflow it and exercise the external sort *)
let spill_budget = 4

let reference_config =
  { workers = 1; ppk_k = 1; ppk_prefetch = 0; indexes = false;
    cost_based = false; spill = false }

let generate_config st =
  { workers = 1 + Random.State.int st 6;
    ppk_k = [| 1; 2; 3; 5; 8 |].(Random.State.int st 5);
    ppk_prefetch = [| 0; 1; 2; 4 |].(Random.State.int st 4);
    indexes = Random.State.bool st;
    cost_based = Random.State.bool st;
    spill = Random.State.bool st }

let config_to_string c =
  Printf.sprintf "workers=%d k=%d prefetch=%d indexes=%b cost=%b spill=%b"
    c.workers c.ppk_k c.ppk_prefetch c.indexes c.cost_based c.spill

let config_of_string line =
  let fields =
    List.filter_map
      (fun tok ->
        match String.index_opt tok '=' with
        | Some i ->
          Some
            ( String.sub tok 0 i,
              String.sub tok (i + 1) (String.length tok - i - 1) )
        | None -> None)
      (String.split_on_char ' ' (String.trim line))
  in
  let int_field k =
    match List.assoc_opt k fields with
    | Some v -> (
      match int_of_string_opt v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "config: %s is not an integer: %s" k v))
    | None -> Error (Printf.sprintf "config: missing field %s" k)
  in
  (* absent in corpus lines that predate the knob: such scenarios ran
     with indexes unconditionally on *)
  let bool_field k ~default =
    match List.assoc_opt k fields with
    | None -> Ok default
    | Some v -> (
      match bool_of_string_opt v with
      | Some b -> Ok b
      | None -> Error (Printf.sprintf "config: %s is not a boolean: %s" k v))
  in
  let ( let* ) = Result.bind in
  let* workers = int_field "workers" in
  let* ppk_k = int_field "k" in
  let* ppk_prefetch = int_field "prefetch" in
  let* indexes = bool_field "indexes" ~default:true in
  (* corpus lines predating cost-based selection ran with it on (the
     server default) *)
  let* cost_based = bool_field "cost" ~default:true in
  (* corpus lines predating the external sort ran with in-memory sorts *)
  let* spill = bool_field "spill" ~default:false in
  Ok { workers; ppk_k; ppk_prefetch; indexes; cost_based; spill }

(* one pool per worker count, shared by every scenario in the run: pools
   start threads lazily but never stop them, so per-scenario pools would
   leak a few threads each across a long fuzzing run *)
let pools : (int, Pool.t) Hashtbl.t = Hashtbl.create 4

let pool_for workers =
  match Hashtbl.find_opt pools workers with
  | Some p -> p
  | None ->
    let p = Pool.create ~workers () in
    Hashtbl.add pools workers p;
    p

let shutdown_pools () =
  Hashtbl.iter (fun _ p -> Pool.shutdown p) pools;
  Hashtbl.reset pools

let reference_server (cat : Catalog.t) = Server.reference cat.Catalog.registry

let subject_server (cat : Catalog.t) config =
  Server.create
    ~optimizer_options:
      { Optimizer.default_options with
        Optimizer.ppk_k = config.ppk_k;
        ppk_prefetch = config.ppk_prefetch;
        cost_based = config.cost_based;
        sort_budget_rows =
          (if config.spill then Some spill_budget
           else Optimizer.default_options.Optimizer.sort_budget_rows) }
    ~pool:(pool_for config.workers) cat.Catalog.registry

let run_serialized server q =
  Result.map Aldsp_xml.Item.serialize (Server.run server q)

(* ------------------------------------------------------------------ *)
(* The planted bug: drop the first Where clause of the plan            *)

let drop_first_where plan =
  let dropped = ref false in
  let strip_clauses clauses =
    List.filter
      (fun c ->
        match c with
        | Cexpr.Where _ when not !dropped ->
          dropped := true;
          false
        | _ -> true)
      clauses
  in
  let rec go e =
    if !dropped then e
    else
      match e with
      | Cexpr.Flwor { clauses; return_ }
        when List.exists
               (function Cexpr.Where _ -> true | _ -> false)
               clauses ->
        Cexpr.Flwor { clauses = strip_clauses clauses; return_ }
      | e -> Cexpr.map_children go e
  in
  let mutated = go plan in
  if !dropped then Some mutated else None

let run_mutated server q =
  match Server.compile server q with
  | Error ds ->
    Error
      ("compile failed: " ^ String.concat "; " (List.map Diag.to_string ds))
  | Ok compiled ->
    (* a plan with no Where clause cannot express the bug: evaluate it
       unchanged so such queries count as agreement, keeping the shrinker
       honest about *why* a mutated scenario fails *)
    let plan =
      match drop_first_where compiled.Server.plan with
      | Some mutated -> mutated
      | None -> compiled.Server.plan
    in
    let rt = Eval.runtime (Server.registry server) in
    Result.map Aldsp_xml.Item.serialize (Eval.eval rt plan)

(* ------------------------------------------------------------------ *)

let describe = function
  | Ok s -> "result: " ^ s
  | Error e -> "error: " ^ e

(* The backend access-path switch lives on the shared catalog databases,
   so it is toggled around each side's run: the reference always executes
   on scans and nested loops, the subject per its config. *)
let set_indexes (cat : Catalog.t) flag =
  List.iter
    (fun db -> Aldsp_relational.Database.set_use_indexes db flag)
    (Metadata.databases cat.Catalog.registry)

(* Plan-cache determinism: the second execution of the same query on the
   same server must hit the plan cache (zero new compilations — the
   generator never emits prolog functions, so the metadata generation is
   stable across runs) and serialize to the same bytes as the first. *)
let recheck_cached server q first =
  let misses_before = Server.plan_cache_misses server in
  match run_serialized server q with
  | Error e -> Error (Printf.sprintf "cached re-run failed: %s" e)
  | Ok second ->
    if not (String.equal first second) then
      Error
        (Printf.sprintf "cached re-run diverged\nfirst  result: %s\nsecond result: %s"
           first second)
    else if Server.plan_cache_misses server <> misses_before then
      Error "cached re-run recompiled: expected a plan-cache hit"
    else Ok ()

(* ------------------------------------------------------------------ *)
(* Concurrent serving-layer oracle: the serial reference answers each
   query first; then N session threads replay the whole list against ONE
   shared subject server through the admission-controlled front door
   (Server.submit), query i on session (i mod N). The queries are
   read-only, so whatever the interleaving, every concurrent answer must
   byte-match its serial one — and the admission counters must balance. *)

let compare_concurrent cat config ~sessions queries =
  let queries = Array.of_list queries in
  let n = Array.length queries in
  set_indexes cat false;
  let ref_server = reference_server cat in
  let expected = Array.map (run_serialized ref_server) queries in
  set_indexes cat config.indexes;
  (* one pass through a plain subject, then the same replay with
     cross-session work sharing (single-flight coalescing + batched
     dispatch) switched on: sharing must be invisible in results too *)
  let run_pass ~label subject =
    let results = Array.make n (Error "query never ran") in
    let worker sid =
      let ses = Server.session subject () in
      let i = ref sid in
      while !i < n do
        results.(!i) <-
          (match Server.session_run ses queries.(!i) with
          | Ok items -> Ok (Aldsp_xml.Item.serialize items)
          | Error e -> Error (Server.submit_error_to_string e));
        i := !i + sessions
      done
    in
    let threads = List.init sessions (fun sid -> Thread.create worker sid) in
    List.iter Thread.join threads;
    let adm = Server.admission_stats subject in
    let mismatch = ref None in
    Array.iteri
      (fun i got ->
        if !mismatch = None then
          match (expected.(i), got) with
          | Ok a, Ok b when String.equal a b -> ()
          | Error a, Error b when String.equal a b -> ()
          | exp, got ->
            mismatch :=
              Some
                (Printf.sprintf
                   "query %d (session %d) diverged under %d sessions%s\nquery: %s\nreference %s\nsubject   %s"
                   i (i mod sessions) sessions label queries.(i)
                   (describe exp) (describe got)))
      results;
    match !mismatch with
    | Some report -> Error report
    | None ->
      (* counter consistency: every submission admitted (the oracle never
         outruns the default queue) and completed; nothing left behind *)
      if adm.Server.ad_submitted <> n then
        Error
          (Printf.sprintf "admission%s: %d submitted, expected %d" label
             adm.Server.ad_submitted n)
      else if adm.Server.ad_rejected <> 0 then
        Error
          (Printf.sprintf "admission%s: %d queries rejected Overloaded" label
             adm.Server.ad_rejected)
      else if adm.Server.ad_deadline_aborts <> 0 then
        Error
          (Printf.sprintf "admission%s: %d deadline aborts without deadlines"
             label adm.Server.ad_deadline_aborts)
      else if adm.Server.ad_completed <> n || adm.Server.ad_active <> 0
              || adm.Server.ad_queued <> 0 then
        Error
          (Printf.sprintf
             "admission counters%s inconsistent: completed=%d active=%d queued=%d (submitted %d)"
             label adm.Server.ad_completed adm.Server.ad_active
             adm.Server.ad_queued n)
      else Ok ()
  in
  let plain = run_pass ~label:"" (subject_server cat config) in
  let outcome =
    match plain with
    | Error _ as e -> e
    | Ok () ->
      let shared_subject = subject_server cat config in
      Server.set_work_sharing shared_subject true;
      let r = run_pass ~label:" [work sharing]" shared_subject in
      (* the flag lives on the catalog's databases: restore so later
         scenarios (and the serial fault runs) stay share-free *)
      Server.set_work_sharing shared_subject false;
      (match r with
      | Error _ as e -> e
      | Ok () ->
        (* sharing bookkeeping must balance: every saved roundtrip is a
           coalesced statement or a batch merge *)
        let st = Server.stats shared_subject in
        if
          st.Server.st_dedup_roundtrips_saved
          <> st.Server.st_coalesced_hits + st.Server.st_batch_merges
          || st.Server.st_dedup_roundtrips_saved < 0
        then
          Error
            (Printf.sprintf
               "sharing counters inconsistent: saved=%d coalesced=%d merges=%d"
               st.Server.st_dedup_roundtrips_saved st.Server.st_coalesced_hits
               st.Server.st_batch_merges)
        else Ok ())
  in
  set_indexes cat true;
  outcome

(* Streaming differential: a successful scenario also runs through the
   streamed session path — execute_stream, backend cursors, the
   backpressured delivery queue — and the chunks that reach the consumer
   must byte-match the materialized result pushed through the same token
   serializer. A small queue forces real producer blocking. *)
let check_streamed server q items =
  let expected = Server.serialize_result server items in
  let ses = Server.session server () in
  match Server.session_run_stream ses ~buffer:32 q with
  | Error e ->
    Error ("streamed run failed: " ^ Server.submit_error_to_string e)
  | Ok stream -> (
    let buf = Buffer.create 256 in
    match Server.stream_serialize stream (Buffer.add_string buf) with
    | Error e ->
      Error ("streamed delivery failed: " ^ Server.submit_error_to_string e)
    | Ok () ->
      let got = Buffer.contents buf in
      if String.equal expected got then Ok ()
      else
        Error
          (Printf.sprintf
             "streamed delivery diverged\nmaterialized: %s\nstreamed    : %s"
             expected got))

let compare_query cat config ?(mutate = false) q =
  let reference =
    set_indexes cat false;
    run_serialized (reference_server cat) q
  in
  let subject, cached_check =
    set_indexes cat config.indexes;
    let r, chk =
      if mutate then (run_mutated (subject_server cat config) q, Ok ())
      else
        let server = subject_server cat config in
        let run = Server.run server q in
        let r = Result.map Aldsp_xml.Item.serialize run in
        let chk =
          match (run, r) with
          | Ok items, Ok first -> (
            match recheck_cached server q first with
            | Error _ as e -> e
            | Ok () -> check_streamed server q items)
          | _ -> Ok ()
        in
        (r, chk)
    in
    set_indexes cat true;
    (r, chk)
  in
  match (reference, subject, cached_check) with
  | Ok a, Ok b, Ok () when String.equal a b -> Ok ()
  | Error a, Error b, Ok () when String.equal a b -> Ok ()
  | _, _, Error report -> Error report
  | _ ->
    Error
      (Printf.sprintf "reference %s\nsubject   %s" (describe reference)
         (describe subject))
