(** Seeded random generation of core XQuery expressions over a
    {!Catalog.t}, in a structured form the shrinker can reduce.

    The shapes mirror what the paper's processor must keep invariant
    under optimization: FLWORs over relational, CSV and web-service
    sources, nested element construction, the [fn-bea:] adaptors of
    §5.4–5.6, order-by, FLWGOR group-by and quantified predicates. Every
    query renders to deterministic text: service calls hit the pure
    rating service, timeouts use generous budgets, and group-by is always
    paired with an order on its key, so the reference and optimized
    pipelines must agree byte-for-byte. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

(** Predicate over [$c] bound to CUSTOMER rows. *)
type pred =
  | P_true  (** no [where] clause; the shrinker's floor *)
  | P_str of string * cmp * string  (** string field vs quoted literal *)
  | P_since of cmp * int
  | P_some_order  (** [some $q in ORDER_T() satisfies ...] *)
  | P_exists_order  (** [fn:exists(for $q in ORDER_T() ...)] *)
  | P_and of pred * pred
  | P_or of pred * pred

type adaptor =
  | A_plain
  | A_failover  (** [fn-bea:fail-over(rating, -1)] *)
  | A_timeout  (** [fn-bea:timeout(rating, 60000, -1)]: generous budget *)

(** Return expression of a CUSTOMER scan. *)
type ret =
  | R_last_name
  | R_cid
  | R_pair
  | R_orders  (** nested construction over the customer's orders *)
  | R_count
  | R_rating of adaptor  (** calls the rating web service per row *)

type order = O_none | O_cid | O_last_desc | O_since_desc

type query =
  | Scan of { pred : pred; order : order; ret : ret }
  | Join_orders of { field : string; cmp : cmp; lit : string }
      (** same-database join CUSTOMER ⋈ ORDER_T *)
  | Join_cards of { limit_filter : bool }
      (** cross-database join CUSTOMER ⋈ CREDIT_CARD — the PP-k shape *)
  | Group_by of { key : string }  (** FLWGOR, ordered by its key *)
  | View_filter of { field : string; cmp : cmp; lit : string }
      (** predicate over the [getSummary()] data-service view *)
  | Subseq of { order : order; start : int; len : int }
  | Aggregate of { pred : pred }  (** nested [sum] per customer *)
  | Region_scan of { min_pop : int }  (** the CSV source *)
  | Async_lets of { n : int }
      (** [n] independent [fn-bea:async] rating lets (§5.4) *)

val minimal : query
(** [for $c in CUSTOMER() return fn:data($c/CID)] — the smallest shape. *)

val generate : Random.State.t -> query

val render : query -> string
(** Deterministic XQuery text; equal queries render equally. *)

val size : query -> int
(** Rendered length; {!shrink_candidates} only proposes smaller sizes. *)

val shrink_candidates : query -> query list
(** Strictly smaller variants to try when this query's scenario fails,
    ordered most-aggressive first. Empty when already minimal. *)
