(** Greedy counterexample minimization.

    A failing scenario — catalog spec, runtime configuration, structured
    query — is reduced along all three axes: the query through
    {!Gen.shrink_candidates}, the catalog toward one customer and empty
    satellite tables, the configuration toward the reference knobs
    (one worker, [k = 1], no prefetch). Every candidate strictly
    decreases {!scenario_size}, so minimization terminates; a bound on
    re-checks keeps the worst case cheap. *)

type scenario = {
  spec : Catalog.spec;
  config : Oracle.config;
  query : Gen.query;
}

val scenario_size : scenario -> int

val candidates : scenario -> scenario list
(** Strictly smaller variants, query shrinks first. *)

val minimize :
  ?max_checks:int -> fails:(scenario -> bool) -> scenario -> scenario * int
(** Greedy descent: repeatedly move to the first candidate that still
    fails. Returns the (locally) minimal scenario and the number of
    [fails] evaluations spent. [max_checks] defaults to 400. *)
