(** SQL round-trip checking (§4.4).

    Two obligations per pushed {!Aldsp_core.Cexpr.clause-Rel} region:

    {ol
    {- The owning database's own dialect printer must accept the
       statement — {!Aldsp_relational.Sql_print.Unsupported} here means
       the pushdown capability gates let through a feature the dialect
       cannot express, and is reported as a failure.}
    {- The SQL92 rendering of the statement must survive a full text
       round-trip: re-parse via {!Aldsp_relational.Sql_parser}, reprint
       to a byte-identical fixpoint, and execute (both ASTs, every
       positional parameter bound to NULL on both sides) to the same
       result table. Regions using vendor-only features SQL92 cannot
       express (row windows) are skipped — that dialect text is
       display-oriented and outside the parser's contract.}} *)

open Aldsp_core

val rel_regions : Cexpr.t -> Cexpr.sql_access list
(** All pushed relational regions of a compiled plan, in plan order. *)

val check_plan : Metadata.t -> Cexpr.t -> (int, string) result
(** Round-trips every region of the plan; [Ok n] is the number of
    regions checked (possibly 0 for plans with no pushdown). *)

val check_query : Server.t -> string -> (int, string) result
(** Compiles the query on the server and round-trips its plan. *)
