(** The fuzzing harness: seeded scenario generation, oracle comparison,
    fault scenarios, shrinking, and the counterexample/corpus text
    format.

    Determinism contract: every scenario derives all randomness from
    [Random.State.make [| seed; index |]], and a catalog is rebuilt from
    its recorded spec alone, so [run ~seed] is fully reproducible and a
    single scenario replays standalone from its [(seed, index)] pair or
    from its printed counterexample. *)

type kind = K_oracle | K_fault | K_mutation | K_concurrent

type counterexample = {
  cx_seed : int;
  cx_index : int;
  cx_kind : kind;
  cx_scenario : Shrink.scenario;  (** Already shrunk for oracle/mutation. *)
  cx_report : string;  (** Human-readable description of the failure. *)
  cx_shrink_checks : int;  (** Re-checks the shrinker spent. *)
}

val check : ?mutate:bool -> Shrink.scenario -> string option
(** Builds the catalog and compares reference vs subject on the rendered
    query; [Some report] on disagreement. [mutate] plants the
    dropped-Where bug into the subject (see {!Oracle.run_mutated}). *)

val scenario_of : seed:int -> index:int -> Shrink.scenario
(** The deterministic scenario for this seed/index pair. *)

val run_one : ?mutate:bool -> seed:int -> index:int -> unit ->
  (unit, counterexample) result
(** One oracle scenario; failures are shrunk before being returned. *)

val run :
  ?mutate:bool ->
  ?with_faults:bool ->
  ?log:(string -> unit) ->
  seed:int ->
  count:int ->
  unit ->
  (int, counterexample) result
(** [count] scenarios from [seed]: oracle comparisons, with every fifth
    index additionally running a randomized fault scenario when
    [with_faults] (default true). Stops at the first failure, shrunk.
    [Ok n] is the number of scenarios that ran. *)

val concurrent_queries :
  seed:int -> index:int -> count:int -> Shrink.scenario -> string list
(** The deterministic [count]-query corpus a concurrent scenario replays:
    the scenario's own query plus more from a sibling RNG stream. *)

val run_concurrent :
  ?sessions:int ->
  ?queries:int ->
  ?log:(string -> unit) ->
  seed:int ->
  count:int ->
  unit ->
  (int, counterexample) result
(** [count] concurrent scenarios from [seed]: each builds the
    deterministic catalog/config for its index, derives a [queries]-query
    corpus (the scenario's own query plus more from a sibling RNG
    stream), and runs {!Oracle.compare_concurrent} with [sessions]
    (default 16) session threads against one shared subject server.
    Failures are reported unshrunk ([K_concurrent]): an interleaving
    property of the whole list would not survive single-query
    shrinking. *)

val cx_to_string : counterexample -> string
(** The corpus text format: [kind:]/[seed:]/[index:]/[spec:]/[config:]/
    [query:] lines followed by the report as [#] comments. *)

val corpus_entry_of_string :
  string -> (Catalog.spec * Oracle.config * string, string) result
(** Parses a corpus entry: the spec and config lines plus the query as
    raw text (replay does not need the structured form). [#] comment
    lines and [kind:]/[seed:]/[index:] lines are ignored. *)

val replay_corpus : string -> (unit, string) result
(** Replays one corpus entry's spec/config/query through the oracle
    comparison; [Error] if the entry (a previously shrunk
    counterexample) disagrees again. *)
