type cmp = Eq | Ne | Lt | Le | Gt | Ge

type pred =
  | P_true
  | P_str of string * cmp * string
  | P_since of cmp * int
  | P_some_order
  | P_exists_order
  | P_and of pred * pred
  | P_or of pred * pred

type adaptor = A_plain | A_failover | A_timeout

type ret =
  | R_last_name
  | R_cid
  | R_pair
  | R_orders
  | R_count
  | R_rating of adaptor

type order = O_none | O_cid | O_last_desc | O_since_desc

type query =
  | Scan of { pred : pred; order : order; ret : ret }
  | Join_orders of { field : string; cmp : cmp; lit : string }
  | Join_cards of { limit_filter : bool }
  | Group_by of { key : string }
  | View_filter of { field : string; cmp : cmp; lit : string }
  | Subseq of { order : order; start : int; len : int }
  | Aggregate of { pred : pred }
  | Region_scan of { min_pop : int }
  | Async_lets of { n : int }

let minimal = Scan { pred = P_true; order = O_none; ret = R_cid }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let cmp_to_string = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let rec pred_to_string = function
  | P_true -> "fn:true()"
  | P_str (field, c, lit) ->
    Printf.sprintf "$c/%s %s \"%s\"" field (cmp_to_string c) lit
  | P_since (c, n) -> Printf.sprintf "$c/SINCE %s %d" (cmp_to_string c) n
  | P_some_order -> "some $q in ORDER_T() satisfies $q/CID eq $c/CID"
  | P_exists_order ->
    "fn:exists(for $q in ORDER_T() where $q/CID eq $c/CID return $q)"
  (* operands parenthesized: a quantified expression is an ExprSingle and
     cannot appear bare as an and/or operand *)
  | P_and (a, b) ->
    Printf.sprintf "(%s) and (%s)" (pred_to_string a) (pred_to_string b)
  | P_or (a, b) ->
    Printf.sprintf "(%s) or (%s)" (pred_to_string a) (pred_to_string b)

let rating_call ~lname ~ssn =
  Printf.sprintf
    "getRating(<getRating><lName>{%s}</lName><ssn>{%s}</ssn></getRating>)"
    lname ssn

(* the per-row rating expression: latency is zero and the service is a
   pure function of the request, so fail-over keeps the primary and the
   60s timeout budget never trips — both configurations see the primary *)
let ret_to_string = function
  | R_last_name -> "$c/LAST_NAME"
  | R_cid -> "fn:data($c/CID)"
  | R_pair -> "<R>{$c/CID, $c/LAST_NAME}</R>"
  | R_orders ->
    "<R>{$c/CID, for $o in ORDER_T() where $o/CID eq $c/CID return $o/OID}</R>"
  | R_count ->
    "<R>{$c/CID, <N>{count(for $o in ORDER_T() where $o/CID eq $c/CID \
     return $o)}</N>}</R>"
  | R_rating a ->
    let call =
      Printf.sprintf "fn:data(%s/getRatingResult)"
        (rating_call ~lname:"fn:data($c/LAST_NAME)" ~ssn:"fn:data($c/SSN)")
    in
    let wrapped =
      match a with
      | A_plain -> call
      | A_failover -> Printf.sprintf "fn-bea:fail-over(%s, -1)" call
      | A_timeout -> Printf.sprintf "fn-bea:timeout(%s, 60000, -1)" call
    in
    Printf.sprintf "<R>{$c/CID, <RT>{%s}</RT>}</R>" wrapped

let order_to_string = function
  | O_none -> ""
  | O_cid -> " order by $c/CID"
  | O_last_desc -> " order by $c/LAST_NAME descending"
  | O_since_desc -> " order by $c/SINCE descending"

let where_to_string = function
  | P_true -> ""
  | p -> Printf.sprintf " where %s" (pred_to_string p)

let render = function
  | Scan { pred; order; ret } ->
    Printf.sprintf "for $c in CUSTOMER()%s%s return %s" (where_to_string pred)
      (order_to_string order) (ret_to_string ret)
  | Join_orders { field; cmp; lit } ->
    Printf.sprintf
      "for $c in CUSTOMER(), $o in ORDER_T() where $c/CID eq $o/CID and \
       $o/%s %s %s return <J>{$c/CID, $o/OID}</J>"
      field (cmp_to_string cmp) lit
  | Join_cards { limit_filter } ->
    Printf.sprintf
      "for $c in CUSTOMER(), $k in CREDIT_CARD() where $c/CID eq $k/CID%s \
       return <K>{$c/CID, $k/NUM}</K>"
      (if limit_filter then " and $k/LIMIT_ gt 500.0" else "")
  | Group_by { key } ->
    Printf.sprintf
      "for $c in CUSTOMER() group $c as $g by $c/%s as $key order by $key \
       return <G>{$key, count($g)}</G>"
      key
  | View_filter { field; cmp; lit } ->
    Printf.sprintf "for $p in getSummary() where $p/%s %s \"%s\" return $p/CID"
      field (cmp_to_string cmp) lit
  | Subseq { order; start; len } ->
    Printf.sprintf
      "fn:subsequence(for $c in CUSTOMER()%s return fn:data($c/CID), %d, %d)"
      (order_to_string order) start len
  | Aggregate { pred } ->
    Printf.sprintf
      "for $c in CUSTOMER()%s return <A>{$c/CID, <T>{sum(for $o in ORDER_T() \
       where $o/CID eq $c/CID return $o/AMOUNT)}</T>}</A>"
      (where_to_string pred)
  | Region_scan { min_pop } ->
    Printf.sprintf
      "for $r in REGION() where $r/POP gt %d order by $r/CODE return \
       <Z>{$r/CODE, $r/NAME}</Z>"
      min_pop
  | Async_lets { n } ->
    let n = max 1 n in
    let lets =
      List.init n (fun i ->
          Printf.sprintf "let $v%d := fn-bea:async(%s)" i
            (rating_call
               ~lname:(Printf.sprintf "\"L%d\"" i)
               ~ssn:(Printf.sprintf "\"%d\"" (100 + i))))
    in
    let uses =
      List.init n (fun i -> Printf.sprintf "$v%d/getRatingResult" i)
    in
    Printf.sprintf "%s return <R>{%s}</R>" (String.concat " " lets)
      (String.concat ", " uses)

let size q = String.length (render q)

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)

let pick st xs = xs.(Random.State.int st (Array.length xs))

let cmps = [| Eq; Ne; Lt; Le; Gt; Ge |]
let string_fields = [| "CID"; "LAST_NAME"; "SSN" |]
let string_lits = [| "CUST0001"; "CUST0003"; "Jones"; "Smith"; "zzz" |]

let rec gen_pred st depth =
  let base () =
    match Random.State.int st 4 with
    | 0 -> P_str (pick st string_fields, pick st cmps, pick st string_lits)
    | 1 -> P_since (pick st cmps, pick st [| 0; 250000; 500000; 999999 |])
    | 2 -> P_some_order
    | _ -> P_exists_order
  in
  if depth = 0 then base ()
  else
    match Random.State.int st 4 with
    | 0 -> P_and (gen_pred st (depth - 1), gen_pred st (depth - 1))
    | 1 -> P_or (gen_pred st (depth - 1), gen_pred st (depth - 1))
    | _ -> base ()

let gen_ret st =
  match Random.State.int st 8 with
  | 0 -> R_last_name
  | 1 -> R_cid
  | 2 -> R_pair
  | 3 -> R_orders
  | 4 -> R_count
  | 5 -> R_rating A_plain
  | 6 -> R_rating A_failover
  | _ -> R_rating A_timeout

let gen_order st = pick st [| O_none; O_cid; O_last_desc; O_since_desc |]

let generate st =
  match Random.State.int st 9 with
  | 0 ->
    Scan { pred = gen_pred st 1; order = gen_order st; ret = gen_ret st }
  | 1 ->
    Join_orders
      { field = pick st [| "OID"; "AMOUNT" |];
        cmp = pick st cmps;
        lit = pick st [| "1002"; "30.0"; "0"; "99999" |] }
  | 2 -> Join_cards { limit_filter = Random.State.bool st }
  | 3 -> Group_by { key = pick st [| "LAST_NAME"; "FIRST_NAME" |] }
  | 4 ->
    View_filter
      { field = pick st [| "CID"; "LAST_NAME" |];
        cmp = pick st cmps;
        lit = pick st string_lits }
  | 5 ->
    Subseq
      { order = gen_order st;
        start = 1 + Random.State.int st 4;
        len = 1 + Random.State.int st 5 }
  | 6 -> Aggregate { pred = gen_pred st 0 }
  | 7 -> Region_scan { min_pop = Random.State.int st 50000 }
  | _ -> Async_lets { n = 1 + Random.State.int st 3 }

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)

let rec shrink_pred = function
  | P_true -> []
  | P_and (a, b) | P_or (a, b) ->
    (a :: b :: List.map (fun a' -> P_and (a', b)) (shrink_pred a))
    @ [ P_true ]
  | _ -> [ P_true ]

let shrink_ret = function R_cid -> [] | _ -> [ R_cid ]
let shrink_order = function O_none -> [] | _ -> [ O_none ]

(* candidates may change the query's shape entirely (a join shrinks
   toward a plain scan): the shrinker keeps only candidates that still
   fail, and [size] strictly decreasing guarantees termination *)
let shrink_candidates q =
  let candidates =
    match q with
    | Scan { pred; order; ret } ->
      List.map (fun p -> Scan { pred = p; order; ret }) (shrink_pred pred)
      @ List.map (fun o -> Scan { pred; order = o; ret }) (shrink_order order)
      @ List.map (fun r -> Scan { pred; order; ret = r }) (shrink_ret ret)
    | Join_orders _ | Join_cards _ | Group_by _ | View_filter _
    | Region_scan _ ->
      [ minimal ]
    | Subseq { order; start; len } ->
      [ minimal ]
      @ List.map (fun o -> Subseq { order = o; start; len })
          (shrink_order order)
      @ (if start > 1 then [ Subseq { order; start = 1; len } ] else [])
      @ if len > 1 then [ Subseq { order; start; len = 1 } ] else []
    | Aggregate { pred } ->
      (minimal :: List.map (fun p -> Aggregate { pred = p }) (shrink_pred pred))
      @ [ Scan { pred; order = O_none; ret = R_cid } ]
    | Async_lets { n } ->
      if n > 1 then [ Async_lets { n = n - 1 } ] else [ minimal ]
  in
  let sz = size q in
  List.filter (fun c -> size c < sz) candidates
