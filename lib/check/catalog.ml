open Aldsp_xml
open Aldsp_relational
open Aldsp_services
open Aldsp_core
module V = Sql_value

type spec = {
  seed : int;
  main_vendor : Database.vendor;
  card_vendor : Database.vendor;
  customers : int;
  orders_per_customer : int;
  cards_per_customer : int;
  regions : int;
}

type t = {
  spec : spec;
  main_db : Database.t;
  card_db : Database.t;
  rating : Web_service.t;
  registry : Metadata.t;
}

let vendors =
  [| Database.Oracle; Database.Db2; Database.Sql_server; Database.Sybase;
     Database.Generic_sql92 |]

let vendor_to_string = function
  | Database.Oracle -> "oracle"
  | Database.Db2 -> "db2"
  | Database.Sql_server -> "sqlserver"
  | Database.Sybase -> "sybase"
  | Database.Generic_sql92 -> "sql92"

let vendor_of_string = function
  | "oracle" -> Some Database.Oracle
  | "db2" -> Some Database.Db2
  | "sqlserver" -> Some Database.Sql_server
  | "sybase" -> Some Database.Sybase
  | "sql92" -> Some Database.Generic_sql92
  | _ -> None

let last_names =
  [| "Jones"; "Smith"; "Chen"; "Garcia"; "Okafor"; "Patel"; "Kim"; "Novak" |]

let first_names = [| "Ann"; "Bob"; "Carla"; "Dev"; "Elena"; "Farid" |]

let region_names = [| "North"; "South"; "East"; "West"; "Centre"; "Rim" |]

(* Main-database dialect cycles with the seed so any run of five
   consecutive scenario seeds covers all five printers; everything else is
   drawn from the generator state. *)
let generate st ~seed =
  { seed;
    main_vendor = vendors.(abs seed mod Array.length vendors);
    card_vendor = vendors.(Random.State.int st (Array.length vendors));
    customers = 1 + Random.State.int st 9;
    orders_per_customer = Random.State.int st 4;
    cards_per_customer = Random.State.int st 3;
    regions = 1 + Random.State.int st 5 }

(* ------------------------------------------------------------------ *)

let view_source =
  {|(::pragma function kind="read" ::)
declare function getSummary() as element(SUMMARY)* {
  for $c in CUSTOMER()
  return
    <SUMMARY>
      <CID>{fn:data($c/CID)}</CID>
      <LAST_NAME>{fn:data($c/LAST_NAME)}</LAST_NAME>
      <TOTAL>{sum(for $o in ORDER_T() where $o/CID eq $c/CID return $o/AMOUNT)}</TOTAL>
    </SUMMARY>
};
(::pragma function kind="read" ::)
declare function getSummaryByID($id as xs:string) as element(SUMMARY)* {
  getSummary()[CID eq $id]
};|}

let rating_request_schema =
  Schema.element_decl (Qname.local "getRating")
    (Schema.Complex
       [ Schema.particle (Schema.simple (Qname.local "lName") Atomic.T_string);
         Schema.particle (Schema.simple (Qname.local "ssn") Atomic.T_string) ])

let rating_response_schema =
  Schema.element_decl (Qname.local "getRatingResponse")
    (Schema.Complex
       [ Schema.particle
           (Schema.simple (Qname.local "getRatingResult") Atomic.T_integer) ])

let make_rating_service () =
  let implementation request =
    let ssn =
      match Node.child_elements request (Qname.local "ssn") with
      | [ n ] -> Node.string_value n
      | _ -> ""
    in
    (* pure function of the request, so any evaluation order agrees *)
    let rating = 500 + (Hashtbl.hash ssn mod 350) in
    Ok
      (Node.element (Qname.local "getRatingResponse")
         [ Node.element (Qname.local "getRatingResult")
             [ Node.text (string_of_int rating) ] ])
  in
  Web_service.create ~wsdl_url:"http://ratings.check.example/rate?wsdl"
    "RatingService"
    [ Web_service.operation ~name:"getRating" ~input:rating_request_schema
        ~output:rating_response_schema implementation ]

let region_schema =
  Schema.element_decl (Qname.local "REGION")
    (Schema.Complex
       [ Schema.particle (Schema.simple (Qname.local "CODE") Atomic.T_string);
         Schema.particle (Schema.simple (Qname.local "NAME") Atomic.T_string);
         Schema.particle (Schema.simple (Qname.local "POP") Atomic.T_integer) ])

let build spec =
  (* a private state derived from the recorded seed: build does not depend
     on the generator's state, so replay needs only the spec *)
  let st = Random.State.make [| spec.seed; 0x5eed |] in
  let main_db =
    Database.create ~vendor:spec.main_vendor "CustomerDB"
  in
  let customer =
    Table.create ~primary_key:[ "CID" ] "CUSTOMER"
      [ Table.column ~nullable:false "CID" Table.T_varchar;
        Table.column ~nullable:false "LAST_NAME" Table.T_varchar;
        Table.column "FIRST_NAME" Table.T_varchar;
        Table.column ~nullable:false "SSN" Table.T_varchar;
        Table.column ~nullable:false "SINCE" Table.T_int ]
  in
  let order_ =
    Table.create ~primary_key:[ "OID" ]
      ~foreign_keys:
        [ { Table.fk_columns = [ "CID" ];
            references_table = "CUSTOMER";
            references_columns = [ "CID" ] } ]
      "ORDER_T"
      [ Table.column ~nullable:false "OID" Table.T_int;
        Table.column ~nullable:false "CID" Table.T_varchar;
        Table.column "AMOUNT" Table.T_decimal ]
  in
  Database.add_table main_db customer;
  Database.add_table main_db order_;
  let oid = ref 0 in
  for i = 1 to spec.customers do
    let cid = Printf.sprintf "CUST%04d" i in
    let first =
      if Random.State.int st 5 = 0 then V.Null
      else V.Str first_names.(Random.State.int st (Array.length first_names))
    in
    Result.get_ok
      (Table.insert customer
         [| V.Str cid;
            V.Str last_names.(Random.State.int st (Array.length last_names));
            first;
            V.Str
              (Printf.sprintf "%03d-%02d-%04d" i
                 (Random.State.int st 100)
                 (Random.State.int st 10000));
            V.Int (1 + Random.State.int st 999999) |]);
    (* ragged: a customer has 0..orders_per_customer orders *)
    let n_orders =
      if spec.orders_per_customer = 0 then 0
      else Random.State.int st (spec.orders_per_customer + 1)
    in
    for _ = 1 to n_orders do
      incr oid;
      Result.get_ok
        (Table.insert order_
           [| V.Int (1000 + !oid);
              V.Str cid;
              V.Float (float_of_int (5 * (1 + Random.State.int st 100))) |])
    done
  done;
  let card_db = Database.create ~vendor:spec.card_vendor "CardDB" in
  let card =
    Table.create ~primary_key:[ "CCID" ] "CREDIT_CARD"
      [ Table.column ~nullable:false "CCID" Table.T_int;
        Table.column ~nullable:false "CID" Table.T_varchar;
        Table.column ~nullable:false "NUM" Table.T_varchar;
        Table.column "LIMIT_" Table.T_decimal ]
  in
  Database.add_table card_db card;
  for i = 1 to spec.customers do
    for j = 1 to spec.cards_per_customer do
      Result.get_ok
        (Table.insert card
           [| V.Int ((i * 100) + j);
              V.Str (Printf.sprintf "CUST%04d" i);
              V.Str
                (Printf.sprintf "4400-%04d-%04d" i (Random.State.int st 10000));
              V.Float (float_of_int (500 * (1 + Random.State.int st 6))) |])
    done
  done;
  let rating = make_rating_service () in
  let registry = Metadata.create () in
  Metadata.introspect_relational registry main_db;
  Metadata.introspect_relational registry card_db;
  Metadata.introspect_service registry rating;
  let csv =
    let rows =
      List.init spec.regions (fun i ->
          Printf.sprintf "R%02d,%s,%d" (i + 1)
            region_names.(Random.State.int st (Array.length region_names))
            (1 + Random.State.int st 100000))
    in
    String.concat "\n" ("CODE,NAME,POP" :: rows)
  in
  (match
     Metadata.register_csv_source registry ~name:"REGION"
       ~schema:region_schema csv
   with
  | Ok () -> ()
  | Error msg -> failwith ("check catalog: REGION source: " ^ msg));
  (* the view layer registers through a throwaway server over the shared
     registry; every server built on this registry sees the functions *)
  let setup = Server.reference registry in
  (match Server.register_data_service setup ~name:"SummaryDS" view_source with
  | Ok () -> ()
  | Error ds ->
    failwith
      ("check catalog: view registration failed: "
      ^ String.concat "; " (List.map Diag.to_string ds)));
  { spec; main_db; card_db; rating; registry }

(* ------------------------------------------------------------------ *)

let spec_to_string s =
  Printf.sprintf
    "seed=%d main=%s card=%s customers=%d orders=%d cards=%d regions=%d"
    s.seed
    (vendor_to_string s.main_vendor)
    (vendor_to_string s.card_vendor)
    s.customers s.orders_per_customer s.cards_per_customer s.regions

let spec_of_string line =
  let fields =
    List.filter_map
      (fun tok ->
        match String.index_opt tok '=' with
        | Some i ->
          Some
            ( String.sub tok 0 i,
              String.sub tok (i + 1) (String.length tok - i - 1) )
        | None -> None)
      (String.split_on_char ' ' (String.trim line))
  in
  let int_field k =
    match List.assoc_opt k fields with
    | Some v -> (
      match int_of_string_opt v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "spec: %s is not an integer: %s" k v))
    | None -> Error (Printf.sprintf "spec: missing field %s" k)
  in
  let vendor_field k =
    match List.assoc_opt k fields with
    | Some v -> (
      match vendor_of_string v with
      | Some vd -> Ok vd
      | None -> Error (Printf.sprintf "spec: unknown vendor %s" v))
    | None -> Error (Printf.sprintf "spec: missing field %s" k)
  in
  let ( let* ) = Result.bind in
  let* seed = int_field "seed" in
  let* main_vendor = vendor_field "main" in
  let* card_vendor = vendor_field "card" in
  let* customers = int_field "customers" in
  let* orders_per_customer = int_field "orders" in
  let* cards_per_customer = int_field "cards" in
  let* regions = int_field "regions" in
  Ok
    { seed; main_vendor; card_vendor; customers; orders_per_customer;
      cards_per_customer; regions }
