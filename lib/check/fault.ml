open Aldsp_relational
open Aldsp_services

type scenario = {
  sc_name : string;
  sc_run : Catalog.t -> (unit, string) result;
}

let ( let* ) = Result.bind

let default_config =
  { Oracle.workers = 2; ppk_k = 2; ppk_prefetch = 1; indexes = true;
    cost_based = true; spill = false }

let plain_q ssn =
  Printf.sprintf
    "fn:data(getRating(<getRating><lName>{\"x\"}</lName><ssn>{\"%s\"}</ssn>\
     </getRating>)/getRatingResult)"
    ssn

let failover_q ssn = Printf.sprintf "fn-bea:fail-over(%s, -1)" (plain_q ssn)

let timeout_q ssn budget_ms =
  Printf.sprintf "fn-bea:timeout(%s, %d, -1)" (plain_q ssn) budget_ms

let run server q = Oracle.run_serialized server q

let expect ~what ~expected ~got =
  if String.equal expected got then Ok ()
  else Error (Printf.sprintf "%s: expected %s, got %s" what expected got)

(* A slow or timed-out primary finishes its call on a worker after the
   query already returned (the schedule entry is consumed before the
   scripted stall, and the failure is accounted after it), so wait for
   the counters themselves to reach the expectation; the final equality
   check still catches overshoot. *)
let check_calls (cat : Catalog.t) ~calls ~failures =
  let s = cat.Catalog.rating.Web_service.stats in
  let deadline = Unix.gettimeofday () +. 2.0 in
  while
    (s.Web_service.calls <> calls
    || s.Web_service.failures <> failures
    || Web_service.schedule_remaining cat.Catalog.rating > 0)
    && Unix.gettimeofday () < deadline
  do
    Thread.yield ();
    Unix.sleepf 0.005
  done;
  if s.Web_service.calls <> calls then
    Error
      (Printf.sprintf "expected %d primary attempt(s), observed %d" calls
         s.Web_service.calls)
  else if s.Web_service.failures <> failures then
    Error
      (Printf.sprintf "expected %d failure(s), observed %d" failures
         s.Web_service.failures)
  else Ok ()

(* ------------------------------------------------------------------ *)

let failover_primary_healthy cat =
  let server = Oracle.subject_server cat default_config in
  let* expected = run server (plain_q "7") in
  Web_service.reset_stats cat.Catalog.rating;
  Web_service.set_schedule cat.Catalog.rating [ Web_service.Fault_ok ];
  let* got = run server (failover_q "7") in
  let* () = expect ~what:"healthy primary wins" ~expected ~got in
  check_calls cat ~calls:1 ~failures:0

let failover_alternate_on_failure cat =
  let server = Oracle.subject_server cat default_config in
  let* alt = run server "-1" in
  Web_service.reset_stats cat.Catalog.rating;
  Web_service.set_schedule cat.Catalog.rating [ Web_service.Fault_fail ];
  let* got = run server (failover_q "7") in
  let* () = expect ~what:"injected failure yields alternate" ~expected:alt ~got in
  (* exactly one attempt: fail-over must not re-execute the primary *)
  check_calls cat ~calls:1 ~failures:1

let failover_recovers_next_call cat =
  let server = Oracle.subject_server cat default_config in
  let* primary = run server (plain_q "7") in
  let* alt = run server "-1" in
  Web_service.reset_stats cat.Catalog.rating;
  Web_service.set_schedule cat.Catalog.rating
    [ Web_service.Fault_fail; Web_service.Fault_ok ];
  let* first = run server (failover_q "7") in
  let* () = expect ~what:"first call fails over" ~expected:alt ~got:first in
  let* second = run server (failover_q "7") in
  let* () =
    expect ~what:"recovered primary wins again" ~expected:primary ~got:second
  in
  check_calls cat ~calls:2 ~failures:1

let timeout_trips_on_stall cat =
  let server = Oracle.subject_server cat default_config in
  let* alt = run server "-1" in
  Web_service.reset_stats cat.Catalog.rating;
  Web_service.set_schedule cat.Catalog.rating [ Web_service.Fault_delay 0.3 ];
  let* got = run server (timeout_q "7" 40) in
  let* () = expect ~what:"stalled primary times out" ~expected:alt ~got in
  check_calls cat ~calls:1 ~failures:0

let timeout_honours_budget cat =
  let server = Oracle.subject_server cat default_config in
  let* expected = run server (plain_q "7") in
  Web_service.reset_stats cat.Catalog.rating;
  Web_service.set_schedule cat.Catalog.rating [ Web_service.Fault_delay 0.02 ];
  let* got = run server (timeout_q "7" 60000) in
  let* () =
    expect ~what:"slow-within-budget primary wins" ~expected ~got
  in
  check_calls cat ~calls:1 ~failures:0

let relational_failover cat =
  let server = Oracle.subject_server cat default_config in
  let* alt = run server "\"down\"" in
  Database.reset_stats cat.Catalog.main_db;
  Database.set_schedule cat.Catalog.main_db [ Database.Fault_fail ];
  let* got =
    run server
      "fn-bea:fail-over(for $c in CUSTOMER() return fn:data($c/CID), \"down\")"
  in
  let* () =
    expect ~what:"scripted relational failure yields alternate" ~expected:alt
      ~got
  in
  let statements = cat.Catalog.main_db.Database.stats.Database.statements in
  (* the failed statement reached the wire exactly once *)
  if statements <> 1 then
    Error
      (Printf.sprintf
         "expected exactly 1 relational roundtrip, observed %d" statements)
  else Ok ()

let scenarios =
  [ { sc_name = "failover primary healthy"; sc_run = failover_primary_healthy };
    { sc_name = "failover alternate on failure";
      sc_run = failover_alternate_on_failure };
    { sc_name = "failover recovers next call";
      sc_run = failover_recovers_next_call };
    { sc_name = "timeout trips on stall"; sc_run = timeout_trips_on_stall };
    { sc_name = "timeout honours budget"; sc_run = timeout_honours_budget };
    { sc_name = "relational failover"; sc_run = relational_failover } ]

(* ------------------------------------------------------------------ *)

let run_random cat st =
  let config =
    { Oracle.workers = 1 + Random.State.int st 4;
      ppk_k = 1;
      ppk_prefetch = 0;
      indexes = Random.State.bool st;
      cost_based = Random.State.bool st;
      spill = Random.State.bool st }
  in
  Oracle.set_indexes cat config.indexes;
  let server = Oracle.subject_server cat config in
  let ssn = string_of_int (Random.State.int st 1000) in
  let* primary = run server (plain_q ssn) in
  let* alt = run server "-1" in
  let use_timeout = Random.State.bool st in
  let event =
    [| Web_service.Fault_ok; Web_service.Fault_fail;
       Web_service.Fault_delay 0.3; Web_service.Fault_fail_after 0.3 |]
      .(Random.State.int st 4)
  in
  (* the outcome is a function of the script: a healthy (or, for
     fail-over, merely slow) primary must win; a scripted failure — or a
     stall past the 60ms timeout budget — must yield the alternate *)
  let expected, failures =
    match (use_timeout, event) with
    | _, Web_service.Fault_ok -> (primary, 0)
    | false, Web_service.Fault_delay _ -> (primary, 0)
    | true, Web_service.Fault_delay _ -> (alt, 0)
    | _, (Web_service.Fault_fail | Web_service.Fault_fail_after _) -> (alt, 1)
  in
  Web_service.reset_stats cat.Catalog.rating;
  Web_service.set_schedule cat.Catalog.rating [ event ];
  let q = if use_timeout then timeout_q ssn 60 else failover_q ssn in
  let* got = run server q in
  let* () =
    expect
      ~what:
        (Printf.sprintf "scripted %s under %s"
           (match event with
           | Web_service.Fault_ok -> "ok"
           | Web_service.Fault_fail -> "fail"
           | Web_service.Fault_delay _ -> "delay"
           | Web_service.Fault_fail_after _ -> "fail-after")
           (if use_timeout then "timeout" else "fail-over"))
      ~expected ~got
  in
  let r = check_calls cat ~calls:1 ~failures in
  Oracle.set_indexes cat true;
  r
