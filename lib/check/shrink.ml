type scenario = {
  spec : Catalog.spec;
  config : Oracle.config;
  query : Gen.query;
}

let scenario_size s =
  Gen.size s.query + s.spec.Catalog.customers
  + s.spec.Catalog.orders_per_customer + s.spec.Catalog.cards_per_customer
  + s.spec.Catalog.regions + s.config.Oracle.workers + s.config.Oracle.ppk_k
  + s.config.Oracle.ppk_prefetch
  + (if s.config.Oracle.indexes then 1 else 0)
  + (if s.config.Oracle.spill then 1 else 0)

(* halve-then-floor steps for one integer field; [floor] is the smallest
   admissible value *)
let int_steps v ~floor =
  if v <= floor then []
  else if v > 2 * (floor + 1) then [ floor; v / 2 ]
  else [ floor ]

let spec_candidates (spec : Catalog.spec) =
  List.concat
    [ List.map
        (fun v -> { spec with Catalog.customers = v })
        (int_steps spec.Catalog.customers ~floor:1);
      List.map
        (fun v -> { spec with Catalog.orders_per_customer = v })
        (int_steps spec.Catalog.orders_per_customer ~floor:0);
      List.map
        (fun v -> { spec with Catalog.cards_per_customer = v })
        (int_steps spec.Catalog.cards_per_customer ~floor:0);
      List.map
        (fun v -> { spec with Catalog.regions = v })
        (int_steps spec.Catalog.regions ~floor:1) ]

let config_candidates (c : Oracle.config) =
  List.concat
    [ List.map
        (fun v -> { c with Oracle.workers = v })
        (int_steps c.Oracle.workers ~floor:1);
      List.map
        (fun v -> { c with Oracle.ppk_k = v })
        (int_steps c.Oracle.ppk_k ~floor:1);
      List.map
        (fun v -> { c with Oracle.ppk_prefetch = v })
        (int_steps c.Oracle.ppk_prefetch ~floor:0);
      (if c.Oracle.indexes then [ { c with Oracle.indexes = false } ] else []);
      (if c.Oracle.spill then [ { c with Oracle.spill = false } ] else [])
    ]

let candidates s =
  let all =
    List.map (fun q -> { s with query = q }) (Gen.shrink_candidates s.query)
    @ List.map (fun spec -> { s with spec }) (spec_candidates s.spec)
    @ List.map (fun config -> { s with config }) (config_candidates s.config)
  in
  let sz = scenario_size s in
  List.filter (fun c -> scenario_size c < sz) all

let minimize ?(max_checks = 400) ~fails s0 =
  let checks = ref 0 in
  let rec go s =
    let rec try_ = function
      | [] -> s
      | c :: rest ->
        if !checks >= max_checks then s
        else begin
          incr checks;
          if fails c then go c else try_ rest
        end
    in
    try_ (candidates s)
  in
  (* bind before reading the counter: tuple components evaluate
     right-to-left *)
  let final = go s0 in
  (final, !checks)
