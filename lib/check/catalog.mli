(** Seeded random source catalogs for the differential harness.

    A catalog is a small enterprise in the demo's shape — CUSTOMER/ORDER_T
    in one database, CREDIT_CARD in another, a rating web service, a
    REGION CSV file source, and a data-service view layer — but with the
    degrees of freedom the paper says must never change results
    randomized: the vendor (and therefore SQL dialect and pushdown
    capabilities, §4.4) of each database, table sizes, ragged data (NULL
    columns, customers without orders), and data values. A [spec] is a
    compact, printable description; {!build} is deterministic from it, so
    a counterexample replays from its spec alone. *)

open Aldsp_relational
open Aldsp_services
open Aldsp_core

type spec = {
  seed : int;  (** Drives all data generation inside {!build}. *)
  main_vendor : Database.vendor;  (** CustomerDB: CUSTOMER, ORDER_T. *)
  card_vendor : Database.vendor;  (** CardDB: CREDIT_CARD. *)
  customers : int;
  orders_per_customer : int;  (** Upper bound; per-customer count is ragged. *)
  cards_per_customer : int;
  regions : int;  (** Rows of the REGION CSV source. *)
}

type t = {
  spec : spec;
  main_db : Database.t;
  card_db : Database.t;
  rating : Web_service.t;
  registry : Metadata.t;
}

val vendors : Database.vendor array
(** All five dialects, in a fixed order (used to cycle coverage). *)

val vendor_to_string : Database.vendor -> string
val vendor_of_string : string -> Database.vendor option

val generate : Random.State.t -> seed:int -> spec
(** Draws a random spec; [seed] is recorded in the spec so that {!build}
    (and a later replay) is independent of the generator's state. The two
    vendors are drawn so that consecutive scenario indices cycle through
    all five dialects. *)

val build : spec -> t
(** Deterministic: same spec, same databases, rows, service and views. *)

val spec_to_string : spec -> string
val spec_of_string : string -> (spec, string) result
(** One-line [key=value] rendering used by the counterexample corpus. *)
