(** The differential oracle: the reference configuration (no rewrites, no
    pushdown, one worker, zero prefetch, sequential lets — a server that
    evaluates the normalized expression essentially as written) compared
    byte-for-byte against an optimized configuration.

    The paper's §4–§6 machinery — rewrites, SQL generation across the
    dialect printers, PP-k block joins with prefetch, concurrent lets —
    must all be invisible in results; any byte of difference is a bug in
    one of them. *)

open Aldsp_core

(** The optimized side's degrees of freedom. Vendors (and so dialects)
    live in {!Catalog.spec}; these are the runtime knobs. [indexes]
    switches the relational backend's access-path selection (index
    probes, hash/index joins) — the reference side always runs on scans
    and nested loops, so every scenario exercises the indexed executor
    against the scan executor too. *)
type config = {
  workers : int;
  ppk_k : int;
  ppk_prefetch : int;
  indexes : bool;
  cost_based : bool;
      (** Statistics-driven plan selection ({!Optimizer.options}'
          [cost_based]): on, join methods, k/prefetch and the pushdown
          gate come from the cost model (the [ppk_k]/[ppk_prefetch] knobs
          are overridden); off, the fixed heuristics and knobs apply. *)
  spill : bool;
      (** Force the subject's blocking sorts through the external sort
          with a tiny row budget ({!spill_budget}), so ORDER BY and
          unclustered GROUP BY spill runs to disk and merge back — the
          reference always sorts unbounded in memory, making every such
          scenario a spilled-vs-in-memory byte comparison. Corpus lines
          predating the knob parse as [false] (in-memory sorts). *)
}

val spill_budget : int
(** The forced [sort_budget_rows] applied when a config's [spill] is on. *)

val reference_config : config
(** [{workers = 1; ppk_k = 1; ppk_prefetch = 0; indexes = false;
    cost_based = false; spill = false}] (informational). *)

val generate_config : Random.State.t -> config
val config_to_string : config -> string
val config_of_string : string -> (config, string) result

val pool_for : int -> Pool.t
(** A process-wide pool per worker count, shared across scenarios so long
    fuzzing runs do not accumulate threads. *)

val shutdown_pools : unit -> unit
(** {!Pool.shutdown} on every cached pool (end of a fuzzing run). *)

val reference_server : Catalog.t -> Server.t
val subject_server : Catalog.t -> config -> Server.t

val set_indexes : Catalog.t -> bool -> unit
(** Flips {!Aldsp_relational.Database.set_use_indexes} on every database
    of the catalog. {!compare_query} does this itself around each side;
    exposed for harnesses that drive servers directly. *)

val run_serialized : Server.t -> string -> (string, string) result
(** Compile + evaluate + {!Aldsp_xml.Item.serialize}. *)

val run_mutated : Server.t -> string -> (string, string) result
(** Compiles the query, then deliberately mis-rewrites the plan — the
    first [Where] clause is dropped, the classic over-eager predicate
    elimination — and evaluates that. Plans with no [Where] clause are
    evaluated unchanged (they cannot express the bug, so they agree).
    Used by the harness's mutation check: the oracle must catch this and
    shrink it. *)

val compare_concurrent :
  Catalog.t -> config -> sessions:int -> string list -> (unit, string) result
(** The concurrent serving-layer oracle: every query answered serially by
    the reference server first, then the whole list replayed by
    [sessions] threads against one shared subject server through
    {!Server.submit} (query [i] on session [i mod sessions] — the
    deterministic round-robin assignment). The replay then runs a second
    time against a fresh subject with cross-session work sharing
    ({!Server.set_work_sharing}: single-flight statement coalescing +
    batched single-key dispatch) switched on — sharing must be invisible
    byte-for-byte too, and its counters must balance (every saved
    roundtrip is a coalesced statement or a batch merge). Any byte of
    divergence on any query in either pass, or admission counters that
    do not balance (a rejection, a phantom deadline abort, work left
    active/queued), is an [Error]. *)

val compare_query : Catalog.t -> config -> ?mutate:bool -> string ->
  (unit, string) result
(** Runs the query on both servers ([mutate] swaps the subject evaluation
    for {!run_mutated}); [Error report] describes the disagreement, with
    both results. Matching errors on both sides count as agreement.

    When the subject run succeeds (and [mutate] is off), the query is
    executed a second time on the same subject server: the re-run must be
    served from the plan cache (zero new compilations) and serialize to
    exactly the same bytes — the plan-cache determinism oracle.

    A successful scenario then runs a third time through the streamed
    session path ({!Server.session_run_stream}: streamed execution over
    backend cursors, delivered through a deliberately small
    backpressured queue) and the streamed chunks must byte-match the
    materialized result pushed through the same token serializer — the
    streaming-delivery oracle. *)
