type kind = K_oracle | K_fault | K_mutation | K_concurrent

type counterexample = {
  cx_seed : int;
  cx_index : int;
  cx_kind : kind;
  cx_scenario : Shrink.scenario;
  cx_report : string;
  cx_shrink_checks : int;
}

let kind_to_string = function
  | K_oracle -> "oracle"
  | K_fault -> "fault"
  | K_mutation -> "mutation"
  | K_concurrent -> "concurrent"

let check ?(mutate = false) (s : Shrink.scenario) =
  let cat = Catalog.build s.Shrink.spec in
  match
    Oracle.compare_query cat s.Shrink.config ~mutate
      (Gen.render s.Shrink.query)
  with
  | Ok () -> None
  | Error report -> Some report

(* Scenario seeds combine run seed and index so that (a) every scenario
   replays standalone and (b) consecutive indices cycle the main
   database's vendor through all five dialect printers (Catalog.generate
   derives the vendor from the recorded seed). *)
let scenario_seed ~seed ~index = (seed * 131) + index

let scenario_of ~seed ~index =
  let st = Random.State.make [| seed; index |] in
  let spec = Catalog.generate st ~seed:(scenario_seed ~seed ~index) in
  let config = Oracle.generate_config st in
  let query = Gen.generate st in
  { Shrink.spec; config; query }

let shrunk_counterexample ?(mutate = false) ~seed ~index ~kind s0 report0 =
  let fails s = Option.is_some (check ~mutate s) in
  let shrunk, checks = Shrink.minimize ~fails s0 in
  let report = Option.value ~default:report0 (check ~mutate shrunk) in
  { cx_seed = seed;
    cx_index = index;
    cx_kind = kind;
    cx_scenario = shrunk;
    cx_report = report;
    cx_shrink_checks = checks }

let run_one ?(mutate = false) ~seed ~index () =
  let s = scenario_of ~seed ~index in
  match check ~mutate s with
  | None -> Ok ()
  | Some report ->
    Error
      (shrunk_counterexample ~mutate ~seed ~index
         ~kind:(if mutate then K_mutation else K_oracle)
         s report)

let run ?(mutate = false) ?(with_faults = true) ?(log = ignore) ~seed ~count
    () =
  let result = ref (Ok count) in
  let index = ref 0 in
  while !index < count && Result.is_ok !result do
    let i = !index in
    (match run_one ~mutate ~seed ~index:i () with
    | Ok () -> ()
    | Error cx -> result := Error cx);
    (* every fifth index additionally exercises the fault-schedule layer
       on a fresh catalog; its randomness is drawn from a sibling state
       so the oracle scenario above is unaffected *)
    if Result.is_ok !result && with_faults && i mod 5 = 0 then begin
      let st = Random.State.make [| seed; i; 0xfa17 |] in
      let s = scenario_of ~seed ~index:i in
      let cat = Catalog.build s.Shrink.spec in
      match Fault.run_random cat st with
      | Ok () -> ()
      | Error report ->
        result :=
          Error
            { cx_seed = seed;
              cx_index = i;
              cx_kind = K_fault;
              cx_scenario = s;
              cx_report = report;
              cx_shrink_checks = 0 }
    end;
    if (i + 1) mod 50 = 0 then
      log (Printf.sprintf "%d/%d scenarios ok" (i + 1) count);
    incr index
  done;
  !result

(* ------------------------------------------------------------------ *)
(* Concurrent serving-layer mode                                       *)

(* The scenario's own query plus [count - 1] more from a sibling RNG
   stream (0xcc distinguishes it from the oracle and fault streams), so
   one concurrent scenario replays a small deterministic corpus. *)
let concurrent_queries ~seed ~index ~count s =
  let st = Random.State.make [| seed; index; 0xcc |] in
  Gen.render s.Shrink.query
  :: List.init (max 0 (count - 1)) (fun _ -> Gen.render (Gen.generate st))

let run_concurrent ?(sessions = 16) ?(queries = 24) ?(log = ignore) ~seed
    ~count () =
  let result = ref (Ok count) in
  let index = ref 0 in
  while !index < count && Result.is_ok !result do
    let i = !index in
    let s = scenario_of ~seed ~index:i in
    let qs = concurrent_queries ~seed ~index:i ~count:queries s in
    let cat = Catalog.build s.Shrink.spec in
    (match Oracle.compare_concurrent cat s.Shrink.config ~sessions qs with
    | Ok () -> ()
    | Error report ->
      (* no shrinking: the failure may be an interleaving property of the
         whole query list, which single-query shrinking cannot preserve *)
      result :=
        Error
          { cx_seed = seed;
            cx_index = i;
            cx_kind = K_concurrent;
            cx_scenario = s;
            cx_report = report;
            cx_shrink_checks = 0 });
    if (i + 1) mod 10 = 0 then
      log
        (Printf.sprintf "%d/%d concurrent scenarios ok (%d sessions)" (i + 1)
           count sessions);
    incr index
  done;
  !result

(* ------------------------------------------------------------------ *)
(* Counterexample / corpus text format                                 *)

let cx_to_string cx =
  let report_lines =
    String.split_on_char '\n' cx.cx_report
    |> List.map (fun l -> "# " ^ l)
    |> String.concat "\n"
  in
  Printf.sprintf
    "kind: %s\nseed: %d\nindex: %d\nspec: %s\nconfig: %s\nquery: %s\n%s\n"
    (kind_to_string cx.cx_kind) cx.cx_seed cx.cx_index
    (Catalog.spec_to_string cx.cx_scenario.Shrink.spec)
    (Oracle.config_to_string cx.cx_scenario.Shrink.config)
    (Gen.render cx.cx_scenario.Shrink.query)
    report_lines

let corpus_entry_of_string text =
  let ( let* ) = Result.bind in
  let tagged tag line =
    let prefix = tag ^ ":" in
    if String.length line > String.length prefix
       && String.sub line 0 (String.length prefix) = prefix
    then
      Some
        (String.trim
           (String.sub line (String.length prefix)
              (String.length line - String.length prefix)))
    else None
  in
  let lines =
    List.filter
      (fun l ->
        let l = String.trim l in
        l <> "" && l.[0] <> '#')
      (String.split_on_char '\n' text)
  in
  let find tag =
    match List.find_map (tagged tag) lines with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "corpus entry: missing %s: line" tag)
  in
  let* spec_line = find "spec" in
  let* config_line = find "config" in
  let* query = find "query" in
  let* spec = Catalog.spec_of_string spec_line in
  let* config = Oracle.config_of_string config_line in
  Ok (spec, config, query)

let replay_corpus text =
  match corpus_entry_of_string text with
  | Error e -> Error e
  | Ok (spec, config, query) ->
    let cat = Catalog.build spec in
    (match Oracle.compare_query cat config query with
    | Ok () -> Ok ()
    | Error report ->
      Error (Printf.sprintf "corpus regression on %s\n%s" query report))
