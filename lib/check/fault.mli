(** Deterministic fault-schedule scenarios: scripted per-call
    latency/failure sequences injected into the rating web service and
    the relational adaptor, asserting the fail-over/timeout/retry
    semantics of §5.4–5.6.

    Each scenario is absolute (semantics under faults), not differential:
    the expected value is computed from the schedule — a healthy or
    merely slow-within-budget primary must win, an injected failure or
    budget overrun must yield the alternate — and the sources' call
    counters must show the primary was attempted exactly once (no
    double execution). *)

type scenario = {
  sc_name : string;
  sc_run : Catalog.t -> (unit, string) result;
      (** Runs against a fresh catalog; [Error] describes the violated
          expectation. Leaves the catalog's schedules exhausted. *)
}

val scenarios : scenario list
(** The fixed regression set: fail-over with a healthy primary, with an
    injected failure, recovery on the next call, timeout tripping on a
    scripted stall, timeout honouring a generous budget, fail-over
    around a scripted relational failure. *)

val run_random : Catalog.t -> Random.State.t -> (unit, string) result
(** One randomized scenario: draws an adaptor ([fail-over] or [timeout])
    and a scripted event for the rating service, predicts the outcome
    from the script, and checks prediction, result, and call counters. *)
