module V = Sql_value

(* Normalized key parts. Two SQL values that compare equal under
   [Sql_value.compare_sql] must normalize to structurally identical parts:
   numerics (Int/Float/Timestamp) collapse to their float image, -0. is
   canonicalized to 0., and every NaN payload to the same NaN, so the
   polymorphic [compare] below treats them as one key. Distinct values may
   still collide (two large ints with the same float image); probes are
   therefore candidate generators and callers re-verify with the SQL
   comparison. NULL is its own part so grouping probes can match it. *)
type part = K_null | K_num of float | K_str of string | K_bool of bool

type key = part array

let canon_float f = if Float.is_nan f then Float.nan else if f = 0. then 0. else f

let part_of_value = function
  | V.Null -> K_null
  | V.Int i -> K_num (canon_float (float_of_int i))
  | V.Float f -> K_num (canon_float f)
  | V.Timestamp f -> K_num (canon_float f)
  | V.Str s -> K_str s
  | V.Bool b -> K_bool b

let key_of_values values = Array.map part_of_value values

module Key = struct
  type t = key

  (* [compare] (not [=]) so K_num NaN equals itself; canonicalization makes
     equal keys bitwise identical, so the generic hash agrees. *)
  let equal a b = Stdlib.compare a b = 0
  let hash (k : t) = Hashtbl.hash k
end

module Key_tbl = Hashtbl.Make (Key)

type t = {
  idx_name : string;
  idx_cols : string list;  (* column names, in key order *)
  idx_pos : int array;  (* positions of the key columns in a row *)
  idx_unique : bool;
  buckets : int list ref Key_tbl.t;  (* row ids, descending *)
  mutable idx_entries : int;
  (* numeric [min, max] over single-column K_num keys; widened on add,
     marked dirty when a delete empties an endpoint bucket (the surviving
     extremum is unknowable without a scan, so it is recomputed lazily) *)
  mutable rng : (float * float) option;
  mutable rng_dirty : bool;
}

let create ?(unique = false) ~name ~cols ~positions () =
  { idx_name = name;
    idx_cols = cols;
    idx_pos = positions;
    idx_unique = unique;
    buckets = Key_tbl.create 64;
    idx_entries = 0;
    rng = None;
    rng_dirty = false }

let name t = t.idx_name
let columns t = t.idx_cols
let positions t = t.idx_pos
let unique t = t.idx_unique
let entries t = t.idx_entries

let key_of_row t row = key_of_values (Array.map (fun i -> row.(i)) t.idx_pos)

(* NaN keys stay out of the range: they compare as a key bucket of their
   own but carry no order, so min/max over them is meaningless. *)
let numeric_of_key (k : key) =
  if Array.length k = 1 then
    match k.(0) with
    | K_num f when not (Float.is_nan f) -> Some f
    | _ -> None
  else None

let widen_range t k =
  match numeric_of_key k with
  | None -> ()
  | Some f -> (
    match t.rng with
    | None -> t.rng <- Some (f, f)
    | Some (lo, hi) ->
      if f < lo then t.rng <- Some (f, hi)
      else if f > hi then t.rng <- Some (lo, f))

(* Ids are kept descending so the common case — adding the freshest (and
   largest) row id — is a cons; probes reverse to ascending scan order. *)
let add t id row =
  let k = key_of_row t row in
  let bucket =
    match Key_tbl.find_opt t.buckets k with
    | Some b -> b
    | None ->
      let b = ref [] in
      Key_tbl.add t.buckets k b;
      b
  in
  let rec ins = function
    | [] -> [ id ]
    | x :: _ as l when id > x -> id :: l
    | x :: rest -> x :: ins rest
  in
  bucket := ins !bucket;
  t.idx_entries <- t.idx_entries + 1;
  widen_range t k

let remove t id row =
  let k = key_of_row t row in
  match Key_tbl.find_opt t.buckets k with
  | None -> ()
  | Some b ->
    let n = List.length !b in
    b := List.filter (fun x -> x <> id) !b;
    t.idx_entries <- t.idx_entries - (n - List.length !b);
    if !b = [] then begin
      Key_tbl.remove t.buckets k;
      match (numeric_of_key k, t.rng) with
      | Some f, Some (lo, hi) when f = lo || f = hi -> t.rng_dirty <- true
      | _ -> ()
    end

let clear t =
  Key_tbl.reset t.buckets;
  t.idx_entries <- 0;
  t.rng <- None;
  t.rng_dirty <- false

let distinct_keys t = Key_tbl.length t.buckets

let numeric_range t =
  if t.rng_dirty then begin
    t.rng <-
      Key_tbl.fold
        (fun k _ acc ->
          match (numeric_of_key k, acc) with
          | None, acc -> acc
          | Some f, None -> Some (f, f)
          | Some f, Some (lo, hi) -> Some (Float.min f lo, Float.max f hi))
        t.buckets None;
    t.rng_dirty <- false
  end;
  t.rng

let probe_key t k =
  match Key_tbl.find_opt t.buckets k with
  | Some b -> List.rev !b
  | None -> []

(* Grouping equality (NULL matches NULL): primary-key uniqueness and
   GROUP BY semantics. *)
let probe_grouping t values = probe_key t (key_of_values values)

(* SQL equality: a NULL anywhere in the probe tuple can never compare
   True, so it matches nothing. *)
let probe t values =
  if Array.exists V.is_null values then []
  else probe_grouping t values
