(** Executor for the SQL subset over in-memory databases.

    Executes {!Sql_ast} directly (no text round-trip), with SQL semantics:
    three-valued logic in WHERE/HAVING, NULL-skipping aggregates, SQL
    grouping (NULLs group together), LEFT OUTER JOIN null-extension, and
    correlated subqueries. Every statement executed is accounted as one
    roundtrip on the database's statistics and pays its simulated
    latency. *)

type result_set = {
  columns : string list;
  rows : Sql_value.t array list;
}

val query :
  Database.t ->
  ?params:Sql_value.t array ->
  Sql_ast.select ->
  (result_set, string) result
(** Runs a SELECT. [params] supplies positional [?] bindings (1-based
    [Param i] reads [params.(i-1)]). *)

val query_explained :
  Database.t ->
  ?params:Sql_value.t array ->
  Sql_ast.select ->
  (result_set * string list, string) result
(** Like {!query}, also returning the statement's access-path plan lines
    (the same lines {!Database.explain_last} would report). Returning them
    with the result, instead of reading [last_plan] afterwards, is what
    makes plan capture race-free when statements for several blocks are in
    flight on the worker pool (PP-k prefetch). *)

val query_shared :
  Database.t ->
  ?params:Sql_value.t array ->
  Sql_ast.select ->
  (result_set * string list * bool, string) result
(** {!query_explained} with cross-session work sharing when the database
    opts in ({!Database.set_share_work}): byte-identical concurrent
    statements coalesce on one execution (single-flight), and compatible
    single-key equality probes arriving within the database's adaptive
    accumulation window merge into one IN-list-shaped roundtrip. The
    extra boolean is true when this statement was served from another
    session's work (no roundtrip of its own). Sharing is keyed on
    {!Database.stats_version}, so a DML between two readers splits them
    into different epochs, and is suspended while a fault schedule is
    active (scripted events align with statements one-to-one). With
    sharing off this is exactly {!query_explained}. *)

val execute_dml :
  Database.t ->
  ?params:Sql_value.t array ->
  Sql_ast.dml ->
  (int, string) result
(** Runs INSERT/UPDATE/DELETE; returns the affected row count. *)
