(** Executor for the SQL subset over in-memory databases.

    Executes {!Sql_ast} directly (no text round-trip), with SQL semantics:
    three-valued logic in WHERE/HAVING, NULL-skipping aggregates, SQL
    grouping (NULLs group together), LEFT OUTER JOIN null-extension, and
    correlated subqueries. Every statement executed is accounted as one
    roundtrip on the database's statistics and pays its simulated
    latency. *)

type result_set = {
  columns : string list;
  rows : Sql_value.t array list;
}

val query :
  Database.t ->
  ?params:Sql_value.t array ->
  Sql_ast.select ->
  (result_set, string) result
(** Runs a SELECT. [params] supplies positional [?] bindings (1-based
    [Param i] reads [params.(i-1)]). *)

(** {2 Cursors}

    Chunked fetch over the same access paths. One statement roundtrip is
    accounted (and its simulated latency paid) when the cursor opens —
    chunks are engine-side iteration, not extra roundtrips — and
    [rows_shipped] grows chunk by chunk as rows cross the boundary. The
    eager part of the pipeline (scans, joins, grouping, ordering) runs at
    open; only the final projection is forced lazily. {!query} and
    {!query_explained} are thin drains over a cursor, so a fully drained
    cursor leaves statistics and [last_plan] exactly as they do. *)

type cursor

val default_chunk_rows : int

val open_cursor :
  Database.t ->
  ?params:Sql_value.t array ->
  Sql_ast.select ->
  (cursor, string) result

val fetch_chunk :
  ?rows:int -> cursor -> (Sql_value.t array list, string) result
(** Up to [rows] (default {!default_chunk_rows}) more result rows; [[]]
    means the cursor is exhausted. An [Error] mid-stream (a lazily
    evaluated projection failing) closes the cursor. *)

val cursor_columns : cursor -> string list

val cursor_plan : cursor -> string list
(** The statement's access-path plan lines so far; complete — identical
    to what {!query_explained} returns — once the cursor is drained. *)

val query_explained :
  Database.t ->
  ?params:Sql_value.t array ->
  Sql_ast.select ->
  (result_set * string list, string) result
(** Like {!query}, also returning the statement's access-path plan lines
    (the same lines {!Database.explain_last} would report). Returning them
    with the result, instead of reading [last_plan] afterwards, is what
    makes plan capture race-free when statements for several blocks are in
    flight on the worker pool (PP-k prefetch). *)

val query_shared :
  Database.t ->
  ?params:Sql_value.t array ->
  Sql_ast.select ->
  (result_set * string list * bool, string) result
(** {!query_explained} with cross-session work sharing when the database
    opts in ({!Database.set_share_work}): byte-identical concurrent
    statements coalesce on one execution (single-flight), and compatible
    single-key equality probes arriving within the database's adaptive
    accumulation window merge into one IN-list-shaped roundtrip. The
    extra boolean is true when this statement was served from another
    session's work (no roundtrip of its own). Sharing is keyed on
    {!Database.stats_version}, so a DML between two readers splits them
    into different epochs, and is suspended while a fault schedule is
    active (scripted events align with statements one-to-one). With
    sharing off this is exactly {!query_explained}. *)

(** How a streamed statement answers: [Cursor] for a direct statement,
    [Rows] (result set, plan lines, served-from-another-session flag)
    when cross-session work sharing handled it — shared results are
    materialized by nature, every follower reads the same rows. *)
type streamed =
  | Rows of result_set * string list * bool
  | Cursor of cursor

val query_stream :
  Database.t ->
  ?params:Sql_value.t array ->
  Sql_ast.select ->
  (streamed, string) result
(** The streaming face of {!query_shared}: opens a cursor when the
    statement executes directly (sharing off, or suspended by an active
    fault schedule), otherwise defers to {!query_shared} and wraps its
    shared result. *)

val execute_dml :
  Database.t ->
  ?params:Sql_value.t array ->
  Sql_ast.dml ->
  (int, string) result
(** Runs INSERT/UPDATE/DELETE; returns the affected row count. *)
