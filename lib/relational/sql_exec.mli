(** Executor for the SQL subset over in-memory databases.

    Executes {!Sql_ast} directly (no text round-trip), with SQL semantics:
    three-valued logic in WHERE/HAVING, NULL-skipping aggregates, SQL
    grouping (NULLs group together), LEFT OUTER JOIN null-extension, and
    correlated subqueries. Every statement executed is accounted as one
    roundtrip on the database's statistics and pays its simulated
    latency. *)

type result_set = {
  columns : string list;
  rows : Sql_value.t array list;
}

val query :
  Database.t ->
  ?params:Sql_value.t array ->
  Sql_ast.select ->
  (result_set, string) result
(** Runs a SELECT. [params] supplies positional [?] bindings (1-based
    [Param i] reads [params.(i-1)]). *)

val query_explained :
  Database.t ->
  ?params:Sql_value.t array ->
  Sql_ast.select ->
  (result_set * string list, string) result
(** Like {!query}, also returning the statement's access-path plan lines
    (the same lines {!Database.explain_last} would report). Returning them
    with the result, instead of reading [last_plan] afterwards, is what
    makes plan capture race-free when statements for several blocks are in
    flight on the worker pool (PP-k prefetch). *)

val execute_dml :
  Database.t ->
  ?params:Sql_value.t array ->
  Sql_ast.dml ->
  (int, string) result
(** Runs INSERT/UPDATE/DELETE; returns the affected row count. *)
