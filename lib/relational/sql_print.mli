(** Vendor-specific SQL text generation.

    "Actual SQL syntax generation during pushdown is done in a
    vendor/version-dependent manner" (§4.4). Each supported vendor has a
    capability record that the pushdown framework consults (what is
    pushable, with what syntax), and a printer that renders the {!Sql_ast}
    in that vendor's dialect — e.g. the ROWNUM-wrapper pagination of
    Table 2(i) for Oracle, [TOP]/[ROW_NUMBER] for SQL Server, [FETCH FIRST]
    for DB2. The "base SQL92 platform" is the conservative fallback used
    for any other relational database. *)

type capabilities = {
  supports_window : bool;
      (** Can a row window ([fn:subsequence]) be pushed at all? *)
  supports_window_offset : bool;
      (** Can the window start past row 1? DB2's conservative printer only
          emits [FETCH FIRST] (no offset), so windows with [start > 1]
          must not be pushed there. *)
  supports_case : bool;
  supports_string_concat : bool;
  concat_operator : string;  (** ["||"] or ["+"]. *)
}

val capabilities : Database.vendor -> capabilities

exception Unsupported of string
(** Raised when the AST uses a feature the dialect cannot express; the
    pushdown framework avoids this by consulting {!capabilities} first. *)

val statement : Database.vendor -> Sql_ast.statement -> string
(** Renders a statement; parameters print as [?]. *)

val select_to_string : Database.vendor -> Sql_ast.select -> string

val expr_to_string : Database.vendor -> Sql_ast.expr -> string
