open Sql_ast

type capabilities = {
  supports_window : bool;
  supports_window_offset : bool;
  supports_case : bool;
  supports_string_concat : bool;
  concat_operator : string;
}

let capabilities = function
  | Database.Oracle ->
    { supports_window = true; supports_window_offset = true;
      supports_case = true; supports_string_concat = true;
      concat_operator = "||" }
  | Database.Db2 ->
    { supports_window = true; supports_window_offset = false;
      supports_case = true; supports_string_concat = true;
      concat_operator = "||" }
  | Database.Sql_server ->
    { supports_window = true; supports_window_offset = true;
      supports_case = true; supports_string_concat = true;
      concat_operator = "+" }
  | Database.Sybase ->
    { supports_window = false; supports_window_offset = false;
      supports_case = true; supports_string_concat = true;
      concat_operator = "+" }
  | Database.Generic_sql92 ->
    { supports_window = false; supports_window_offset = false;
      supports_case = false; supports_string_concat = true;
      concat_operator = "||" }

exception Unsupported of string

let quote_ident name = Printf.sprintf "\"%s\"" name

let binop_symbol = function
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | And -> "AND"
  | Or -> "OR"
  | Concat -> "||"
  | Like -> "LIKE"

let precedence = function
  | Or -> 1
  | And -> 2
  | Eq | Neq | Lt | Le | Gt | Ge | Like -> 3
  | Add | Sub | Concat -> 4
  | Mul | Div -> 5

let func_name vendor = function
  | Upper -> "UPPER"
  | Lower -> "LOWER"
  | Substr -> (
    match vendor with
    | Database.Oracle | Database.Db2 -> "SUBSTR"
    | Database.Sql_server | Database.Sybase | Database.Generic_sql92 ->
      "SUBSTRING")
  | Char_length -> (
    match vendor with
    | Database.Oracle -> "LENGTH"
    | Database.Sql_server | Database.Sybase -> "LEN"
    | Database.Db2 | Database.Generic_sql92 -> "CHAR_LENGTH")
  | Abs -> "ABS"
  | Coalesce -> "COALESCE"
  | Trim -> "TRIM"
  | Modulo -> "MOD"

let agg_name = function
  | Count -> "COUNT"
  | Sum -> "SUM"
  | Min -> "MIN"
  | Max -> "MAX"
  | Avg -> "AVG"

let rec expr vendor ~prec e =
  let caps = capabilities vendor in
  match e with
  | Col (Some alias, name) -> Printf.sprintf "%s.%s" alias (quote_ident name)
  | Col (None, name) -> quote_ident name
  | Lit v -> Sql_value.to_string v
  | Param _ -> "?"
  | Binop (Concat, a, b) ->
    if not caps.supports_string_concat then
      raise (Unsupported "string concatenation");
    let p = precedence Concat in
    let s =
      Printf.sprintf "%s %s %s"
        (expr vendor ~prec:p a)
        caps.concat_operator
        (expr vendor ~prec:(p + 1) b)
    in
    if p < prec then "(" ^ s ^ ")" else s
  | Binop (op, a, b) ->
    let p = precedence op in
    let s =
      Printf.sprintf "%s %s %s"
        (expr vendor ~prec:p a)
        (binop_symbol op)
        (expr vendor ~prec:(p + 1) b)
    in
    if p < prec then "(" ^ s ^ ")" else s
  | Not e -> Printf.sprintf "NOT (%s)" (expr vendor ~prec:0 e)
  | Is_null e -> Printf.sprintf "%s IS NULL" (expr vendor ~prec:6 e)
  | Is_not_null e -> Printf.sprintf "%s IS NOT NULL" (expr vendor ~prec:6 e)
  | In_list (e, items) ->
    Printf.sprintf "%s IN (%s)" (expr vendor ~prec:6 e)
      (String.concat ", " (List.map (expr vendor ~prec:0) items))
  | In_select (e, s) ->
    Printf.sprintf "%s IN (%s)" (expr vendor ~prec:6 e) (select vendor s)
  | Exists s -> Printf.sprintf "EXISTS(%s)" (select vendor s)
  | Not_exists s -> Printf.sprintf "NOT EXISTS(%s)" (select vendor s)
  | Case (branches, default) ->
    if not caps.supports_case then raise (Unsupported "CASE expression");
    let buf = Buffer.create 64 in
    Buffer.add_string buf "CASE";
    List.iter
      (fun (cond, value) ->
        Buffer.add_string buf
          (Printf.sprintf " WHEN %s THEN %s"
             (expr vendor ~prec:0 cond)
             (expr vendor ~prec:0 value)))
      branches;
    Option.iter
      (fun d ->
        Buffer.add_string buf
          (Printf.sprintf " ELSE %s" (expr vendor ~prec:0 d)))
      default;
    Buffer.add_string buf " END";
    Buffer.contents buf
  | Func (f, args) ->
    Printf.sprintf "%s(%s)" (func_name vendor f)
      (String.concat ", " (List.map (expr vendor ~prec:0) args))
  | Count_star -> "COUNT(*)"
  | Agg (kind, quantifier, e) ->
    Printf.sprintf "%s(%s%s)" (agg_name kind)
      (match quantifier with All -> "" | Distinct_agg -> "DISTINCT ")
      (expr vendor ~prec:0 e)
  | Scalar_select s -> Printf.sprintf "(%s)" (select vendor s)

and table_ref vendor = function
  | Table { table; alias } ->
    if String.equal table alias then quote_ident table
    else Printf.sprintf "%s %s" (quote_ident table) alias
  | Derived { query; alias } ->
    Printf.sprintf "(%s) %s" (select vendor query) alias

and select_core vendor s =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "SELECT ";
  if s.distinct then Buffer.add_string buf "DISTINCT ";
  (match (vendor, s.window) with
  | (Database.Sql_server | Database.Sybase), Some { start = 1; count = Some n }
    ->
    Buffer.add_string buf (Printf.sprintf "TOP %d " n)
  | _ -> ());
  Buffer.add_string buf
    (String.concat ", "
       (List.map
          (fun (e, alias) ->
            Printf.sprintf "%s AS %s" (expr vendor ~prec:0 e) alias)
          s.projections));
  Buffer.add_string buf " FROM ";
  Buffer.add_string buf (table_ref vendor s.from);
  List.iter
    (fun j ->
      let kw = match j.jkind with Inner -> "JOIN" | Left_outer -> "LEFT OUTER JOIN" in
      Buffer.add_string buf
        (Printf.sprintf " %s %s ON %s" kw
           (table_ref vendor j.jtable)
           (expr vendor ~prec:0 j.on_condition)))
    s.joins;
  Option.iter
    (fun w ->
      Buffer.add_string buf (Printf.sprintf " WHERE %s" (expr vendor ~prec:0 w)))
    s.where;
  if s.group_by <> [] then
    Buffer.add_string buf
      (Printf.sprintf " GROUP BY %s"
         (String.concat ", " (List.map (expr vendor ~prec:0) s.group_by)));
  Option.iter
    (fun h ->
      Buffer.add_string buf
        (Printf.sprintf " HAVING %s" (expr vendor ~prec:0 h)))
    s.having;
  if s.order_by <> [] then
    Buffer.add_string buf
      (Printf.sprintf " ORDER BY %s"
         (String.concat ", "
            (List.map
               (fun o ->
                 expr vendor ~prec:0 o.sort_expr
                 ^ if o.descending then " DESC" else "")
               s.order_by)));
  Buffer.contents buf

and select vendor s =
  match s.window with
  | None -> select_core vendor s
  | Some w -> window_wrap vendor s w

(* Pagination per dialect. Oracle reproduces the paper's Table 2(i) shape:
   a ROWNUM column added in a wrapper query, filtered in an outer query. *)
and window_wrap vendor s w =
  let caps = capabilities vendor in
  if not caps.supports_window then raise (Unsupported "row window");
  let inner = { s with window = None } in
  let upper = Option.map (fun n -> w.start + n) w.count in
  match vendor with
  | Database.Oracle ->
    let aliases = List.map snd s.projections in
    let outer_cols = String.concat ", " (List.map (fun a -> "t0." ^ a) aliases) in
    let mid_cols = String.concat ", " (List.map (fun a -> "ti." ^ a) aliases) in
    let bound =
      match upper with
      | Some u -> Printf.sprintf "(t0.rn >= %d) AND (t0.rn < %d)" w.start u
      | None -> Printf.sprintf "t0.rn >= %d" w.start
    in
    Printf.sprintf
      "SELECT %s FROM (SELECT ROWNUM AS rn, %s FROM (%s) ti) t0 WHERE %s"
      outer_cols mid_cols (select_core vendor inner) bound
  | Database.Sql_server | Database.Sybase ->
    if w.start = 1 && w.count <> None then select_core vendor s
      (* TOP n is emitted inside select_core *)
    else if vendor = Database.Sybase then raise (Unsupported "row window")
    else
      let aliases = List.map snd s.projections in
      let order =
        if inner.order_by = [] then "(SELECT 1)"
        else
          String.concat ", "
            (List.map
               (fun o ->
                 expr vendor ~prec:0 o.sort_expr
                 ^ if o.descending then " DESC" else "")
               inner.order_by)
      in
      let projections =
        String.concat ", "
          (List.map
             (fun (e, alias) ->
               Printf.sprintf "%s AS %s" (expr vendor ~prec:0 e) alias)
             inner.projections)
      in
      let bound =
        match upper with
        | Some u -> Printf.sprintf "(t0.rn >= %d) AND (t0.rn < %d)" w.start u
        | None -> Printf.sprintf "t0.rn >= %d" w.start
      in
      Printf.sprintf
        "SELECT %s FROM (SELECT ROW_NUMBER() OVER (ORDER BY %s) AS rn, %s \
         FROM %s%s) t0 WHERE %s"
        (String.concat ", " (List.map (fun a -> "t0." ^ a) aliases))
        order projections
        (table_ref vendor inner.from)
        (match inner.where with
        | Some e -> " WHERE " ^ expr vendor ~prec:0 e
        | None -> "")
        bound
  | Database.Db2 ->
    if w.start = 1 then
      match w.count with
      | Some n ->
        Printf.sprintf "%s FETCH FIRST %d ROWS ONLY" (select_core vendor inner) n
      | None -> select_core vendor inner
    else
      raise (Unsupported "row window with offset on DB2 (conservative)")
  | Database.Generic_sql92 -> raise (Unsupported "row window")

let select_to_string = select

let expr_to_string vendor e = expr vendor ~prec:0 e

let statement vendor = function
  | Query s -> select vendor s
  | Dml (Insert { table; columns; values }) ->
    Printf.sprintf "INSERT INTO %s (%s) VALUES (%s)" (quote_ident table)
      (String.concat ", " (List.map quote_ident columns))
      (String.concat ", " (List.map (expr vendor ~prec:0) values))
  | Dml (Update { table; assignments; where }) ->
    Printf.sprintf "UPDATE %s SET %s%s" (quote_ident table)
      (String.concat ", "
         (List.map
            (fun (c, e) ->
              Printf.sprintf "%s = %s" (quote_ident c) (expr vendor ~prec:0 e))
            assignments))
      (match where with
      | Some e -> " WHERE " ^ expr vendor ~prec:0 e
      | None -> "")
  | Dml (Delete { table; where }) ->
    Printf.sprintf "DELETE FROM %s%s" (quote_ident table)
      (match where with
      | Some e -> " WHERE " ^ expr vendor ~prec:0 e
      | None -> "")
