open Sql_ast
module V = Sql_value

type result_set = {
  columns : string list;
  rows : V.t array list;
}

(* A binding maps an alias to one row: column names (positional) plus the
   row values. Derived tables bind their projection aliases. *)
type binding = { alias : string; cols : string array; values : V.t array }

type context = {
  env : binding list;
  outer : context option;  (* for correlated subqueries *)
  group : binding list list option;  (* rows of the current group *)
  params : V.t array;
  db : Database.t;
  decisions : string list ref;  (* access-path log, newest first *)
}

exception Sql_error of string

let error fmt = Printf.ksprintf (fun msg -> raise (Sql_error msg)) fmt

let decide ctx fmt =
  Printf.ksprintf (fun line -> ctx.decisions := line :: !(ctx.decisions)) fmt

let lookup_in_binding b name =
  let rec go i =
    if i >= Array.length b.cols then None
    else if String.equal b.cols.(i) name then Some b.values.(i)
    else go (i + 1)
  in
  go 0

let rec lookup_col ctx alias name =
  let here =
    match alias with
    | Some a ->
      List.find_map
        (fun b -> if String.equal b.alias a then lookup_in_binding b name else None)
        ctx.env
    | None -> List.find_map (fun b -> lookup_in_binding b name) ctx.env
  in
  match here with
  | Some v -> Some v
  | None -> (
    match ctx.outer with
    | Some outer -> lookup_col outer alias name
    | None -> None)

let truth_to_value = function
  | V.True -> V.Bool true
  | V.False -> V.Bool false
  | V.Unknown -> V.Null

let value_to_truth = function
  | V.Null -> V.Unknown
  | V.Bool true -> V.True
  | V.Bool false -> V.False
  | V.Int 0 -> V.False
  | V.Int _ -> V.True
  | v -> error "expected a boolean, got %s" (V.to_string v)

let numeric_binop op a b =
  match (a, b) with
  | V.Null, _ | _, V.Null -> V.Null
  | V.Int x, V.Int y -> (
    match op with
    | Add -> V.Int (x + y)
    | Sub -> V.Int (x - y)
    | Mul -> V.Int (x * y)
    | Div -> if y = 0 then error "division by zero" else V.Int (x / y)
    | _ -> assert false)
  | _ ->
    let as_f = function
      | V.Int i -> float_of_int i
      | V.Float f -> f
      | V.Timestamp f -> f
      | v -> error "arithmetic on non-numeric %s" (V.to_string v)
    in
    let x = as_f a and y = as_f b in
    let r =
      match op with
      | Add -> x +. y
      | Sub -> x -. y
      | Mul -> x *. y
      | Div -> if y = 0. then error "division by zero" else x /. y
      | _ -> assert false
    in
    V.Float r

let like_match pattern text =
  (* SQL LIKE: '%' = any run, '_' = any single char. *)
  let np = String.length pattern and nt = String.length text in
  let rec go pi ti =
    if pi = np then ti = nt
    else
      match pattern.[pi] with
      | '%' ->
        let rec try_from t = t <= nt && (go (pi + 1) t || try_from (t + 1)) in
        try_from ti
      | '_' -> ti < nt && go (pi + 1) (ti + 1)
      | c -> ti < nt && text.[ti] = c && go (pi + 1) (ti + 1)
  in
  go 0 0

(* ------------------------------------------------------------------ *)
(* Access-path analysis.

   The executor may replace a scan by an index probe, or a nested-loop
   join by a hash/index join, only when the substitution is
   undetectable: identical result rows in identical order AND identical
   error behaviour. The differential oracle (lib/check) compares indexed
   vs scan execution byte-for-byte including error strings, so the
   analysis below is deliberately conservative — an expression whose
   evaluation could raise on rows the fast path would skip ("not total")
   disqualifies the optimization. *)

(* One FROM/JOIN source as the analysis sees it. *)
type src = {
  s_alias : string;
  s_cols : string list;
  s_table : Table.t option;  (* None for derived tables *)
}

type colclass =
  | C_local of src  (* resolves to this source's column *)
  | C_ambiguous  (* unqualified name matching several sources *)
  | C_missing  (* qualified by a local alias, column absent: errors *)
  | C_outer  (* resolves (or fails) in an enclosing scope *)

(* The select's sources in order (FROM first, then joins), or [None] when
   analysis cannot be trusted: unknown table, duplicate aliases, or a
   derived table whose projection list still contains a star. *)
let sources_of ctx s =
  let of_ref = function
    | Table { table; alias } -> (
      match Database.find_table ctx.db table with
      | Ok t ->
        Some
          { s_alias = alias;
            s_cols = List.map (fun c -> c.Table.col_name) t.Table.columns;
            s_table = Some t }
      | Error _ -> None)
    | Derived { query; alias } ->
      let cols = List.map snd query.projections in
      if List.mem "*" cols then None
      else Some { s_alias = alias; s_cols = cols; s_table = None }
  in
  let rec build acc = function
    | [] -> Some (List.rev acc)
    | r :: rest -> (
      match of_ref r with Some s -> build (s :: acc) rest | None -> None)
  in
  match build [] (s.from :: List.map (fun j -> j.jtable) s.joins) with
  | None -> None
  | Some srcs ->
    let aliases = List.map (fun s -> s.s_alias) srcs in
    if List.length (List.sort_uniq String.compare aliases) <> List.length aliases
    then None
    else Some srcs

let classify srcs alias name =
  match alias with
  | Some a -> (
    match List.find_opt (fun s -> String.equal s.s_alias a) srcs with
    | Some src -> if List.mem name src.s_cols then C_local src else C_missing
    | None -> C_outer)
  | None -> (
    match List.filter (fun s -> List.mem name s.s_cols) srcs with
    | [ src ] -> C_local src
    | [] -> C_outer
    | _ -> C_ambiguous)

(* Outer references are constant for the whole select, so they can be
   checked (and later evaluated) once against an environment with no
   local bindings. *)
let outer_lookup ctx alias name = lookup_col { ctx with env = [] } alias name

(* [total_value]: evaluation cannot raise, in value position. Everything
   not listed (arithmetic, LIKE, functions, CASE, subqueries, aggregates)
   is treated as potentially raising. *)
let rec total_value ctx srcs e =
  match e with
  | Lit _ -> true
  | Param i -> i >= 1 && i <= Array.length ctx.params
  | Col (alias, name) -> (
    match classify srcs alias name with
    | C_local _ | C_ambiguous -> true
    | C_missing -> false
    | C_outer -> outer_lookup ctx alias name <> None)
  | Binop ((Eq | Neq | Lt | Le | Gt | Ge | Concat), a, b) ->
    total_value ctx srcs a && total_value ctx srcs b
  | Binop ((And | Or), a, b) -> total_truth ctx srcs a && total_truth ctx srcs b
  | Not a -> total_truth ctx srcs a
  | Is_null a | Is_not_null a -> total_value ctx srcs a
  | In_list (a, items) ->
    total_value ctx srcs a && List.for_all (total_value ctx srcs) items
  | _ -> false

(* [total_truth]: additionally, [value_to_truth] of the result cannot
   raise — the value is known to be boolean-ish (Bool/Int/Null). *)
and total_truth ctx srcs e =
  match e with
  | Binop ((Eq | Neq | Lt | Le | Gt | Ge | And | Or), _, _)
  | Not _ | Is_null _ | Is_not_null _ | In_list _ ->
    total_value ctx srcs e
  | Lit (V.Bool _ | V.Null | V.Int _) -> true
  | Col (alias, name) -> (
    match classify srcs alias name with
    | C_local { s_table = Some t; _ } -> (
      match Table.column_type t name with
      | Some (Table.T_boolean | Table.T_int) -> true
      | _ -> false)
    | C_local _ | C_ambiguous | C_missing -> false
    | C_outer -> (
      match outer_lookup ctx alias name with
      | Some (V.Null | V.Bool _ | V.Int _) -> true
      | _ -> false))
  | Param i ->
    i >= 1
    && i <= Array.length ctx.params
    && (match ctx.params.(i - 1) with
       | V.Null | V.Bool _ | V.Int _ -> true
       | _ -> false)
  | _ -> false

(* A probe key expression: total and constant across the scanned rows
   (no reference to any of this select's own sources). Covers the PP-k
   parameter shape (literals/params) and outer-correlated columns. *)
let probe_value_ok ctx srcs e =
  match e with
  | Lit _ -> true
  | Param i -> i >= 1 && i <= Array.length ctx.params
  | Col (alias, name) -> (
    match classify srcs alias name with
    | C_outer -> outer_lookup ctx alias name <> None
    | _ -> false)
  | _ -> false

let rec conjuncts e =
  match e with Binop (And, a, b) -> conjuncts a @ conjuncts b | e -> [ e ]

let rec disjuncts e =
  match e with Binop (Or, a, b) -> disjuncts a @ disjuncts b | e -> [ e ]

let base_col srcs base e =
  match e with
  | Col (alias, name) -> (
    match classify srcs alias name with
    | C_local src when src == base -> Some name
    | _ -> None)
  | _ -> None

(* One OR-arm of a probe conjunct reduced to equality alternatives: the
   arm can only be True when, for some alternative, all its (column =
   value) equalities hold. IN-lists expand to one alternative per item;
   a conjunctive arm contributes its equality conjuncts. *)
let arm_alternatives ctx srcs base arm =
  match arm with
  | In_list (col, items)
    when base_col srcs base col <> None
         && List.for_all (probe_value_ok ctx srcs) items ->
    let name = Option.get (base_col srcs base col) in
    Some (List.map (fun item -> [ (name, item) ]) items)
  | _ ->
    let pairs =
      List.filter_map
        (fun c ->
          match c with
          | Binop (Eq, a, b) -> (
            match base_col srcs base a with
            | Some n when probe_value_ok ctx srcs b -> Some (n, b)
            | _ -> (
              match base_col srcs base b with
              | Some n when probe_value_ok ctx srcs a -> Some (n, a)
              | _ -> None))
          | _ -> None)
        (conjuncts arm)
    in
    if pairs = [] then None else Some [ pairs ]

(* The index and probe-key expressions implied by [where] for the base
   table, if some top-level conjunct is a disjunction of equality
   alternatives covering an index. Soundness: every row on which [where]
   could evaluate to True carries one of the returned keys. *)
let probe_plan ctx srcs base where =
  match base.s_table with
  | None -> None
  | Some table ->
    if Table.indexes table = [] then None
    else
      let try_conjunct conj =
        let arms = List.map (arm_alternatives ctx srcs base) (disjuncts conj) in
        if List.exists Option.is_none arms then None
        else
          let alts = List.concat_map Option.get arms in
          if alts = [] || List.length alts > 4096 then None
          else
            let common =
              match alts with
              | [] -> []
              | first :: rest ->
                List.filter_map
                  (fun (n, _) ->
                    if List.for_all (fun alt -> List.mem_assoc n alt) rest
                    then Some n
                    else None)
                  first
            in
            let usable =
              List.filter
                (fun idx ->
                  List.for_all (fun c -> List.mem c common) (Index.columns idx))
                (Table.indexes table)
            in
            let best =
              List.fold_left
                (fun acc idx ->
                  match acc with
                  | None -> Some idx
                  | Some b ->
                    let len i = List.length (Index.columns i) in
                    if
                      len idx > len b
                      || (len idx = len b && Index.unique idx
                          && not (Index.unique b))
                    then Some idx
                    else acc)
                None usable
            in
            match best with
            | None -> None
            | Some idx ->
              Some
                ( idx,
                  List.map
                    (fun alt ->
                      List.map (fun c -> List.assoc c alt) (Index.columns idx))
                    alts )
      in
      List.find_map try_conjunct (conjuncts where)

let take n xs =
  let rec go n = function
    | x :: rest when n > 0 -> x :: go (n - 1) rest
    | _ -> []
  in
  go n xs

(* ------------------------------------------------------------------ *)

let rec eval ctx e : V.t =
  match e with
  | Col (alias, name) -> (
    match lookup_col ctx alias name with
    | Some v -> v
    | None ->
      error "unknown column %s%s"
        (match alias with Some a -> a ^ "." | None -> "")
        name)
  | Lit v -> v
  | Param i ->
    if i < 1 || i > Array.length ctx.params then
      error "parameter ?%d not bound" i
    else ctx.params.(i - 1)
  | Binop (And, a, b) ->
    truth_to_value
      (V.and_ (value_to_truth (eval ctx a)) (value_to_truth (eval ctx b)))
  | Binop (Or, a, b) ->
    truth_to_value
      (V.or_ (value_to_truth (eval ctx a)) (value_to_truth (eval ctx b)))
  | Binop (((Eq | Neq | Lt | Le | Gt | Ge) as op), a, b) ->
    let pred =
      match op with
      | Eq -> fun c -> c = 0
      | Neq -> fun c -> c <> 0
      | Lt -> fun c -> c < 0
      | Le -> fun c -> c <= 0
      | Gt -> fun c -> c > 0
      | Ge -> fun c -> c >= 0
      | _ -> assert false
    in
    truth_to_value (V.truth_of_comparison pred (eval ctx a) (eval ctx b))
  | Binop (((Add | Sub | Mul | Div) as op), a, b) ->
    numeric_binop op (eval ctx a) (eval ctx b)
  | Binop (Concat, a, b) -> (
    match (eval ctx a, eval ctx b) with
    | V.Null, _ | _, V.Null -> V.Null
    | x, y ->
      let plain = function
        | V.Str s -> s
        | v -> V.to_string v
      in
      V.Str (plain x ^ plain y))
  | Binop (Like, a, b) -> (
    match (eval ctx a, eval ctx b) with
    | V.Null, _ | _, V.Null -> V.Null
    | V.Str text, V.Str pattern -> V.Bool (like_match pattern text)
    | _ -> error "LIKE requires string operands")
  | Not e -> truth_to_value (V.not_ (value_to_truth (eval ctx e)))
  | Is_null e -> V.Bool (V.is_null (eval ctx e))
  | Is_not_null e -> V.Bool (not (V.is_null (eval ctx e)))
  | In_list (e, items) ->
    let v = eval ctx e in
    if V.is_null v then V.Null
    else
      let vs = List.map (eval ctx) items in
      let any_eq =
        List.exists (fun x -> V.truth_of_comparison (( = ) 0) v x = V.True) vs
      in
      if any_eq then V.Bool true
      else if List.exists V.is_null vs then V.Null
      else V.Bool false
  | In_select (e, s) ->
    let v = eval ctx e in
    if V.is_null v then V.Null
    else
      let result = run_select { ctx with group = None } s in
      let col_values = List.map (fun row -> row.(0)) result.rows in
      if List.exists (fun x -> V.truth_of_comparison (( = ) 0) v x = V.True) col_values
      then V.Bool true
      else if List.exists V.is_null col_values then V.Null
      else V.Bool false
  | Exists s ->
    let result = run_select { ctx with group = None } s in
    V.Bool (result.rows <> [])
  | Not_exists s ->
    let result = run_select { ctx with group = None } s in
    V.Bool (result.rows = [])
  | Case (branches, default) ->
    let rec try_branches = function
      | [] -> ( match default with Some d -> eval ctx d | None -> V.Null)
      | (cond, value) :: rest -> (
        match value_to_truth (eval ctx cond) with
        | V.True -> eval ctx value
        | V.False | V.Unknown -> try_branches rest)
    in
    try_branches branches
  | Func (f, args) -> eval_func ctx f (List.map (eval ctx) args)
  | Count_star -> (
    match ctx.group with
    | Some rows -> V.Int (List.length rows)
    | None -> error "COUNT(*) outside a grouped query")
  | Agg (kind, quantifier, arg) -> eval_agg ctx kind quantifier arg
  | Scalar_select s -> (
    let result = run_select { ctx with group = None } s in
    match result.rows with
    | [] -> V.Null
    | [ row ] -> row.(0)
    | _ :: _ :: _ -> error "scalar subquery returned more than one row")

and eval_func _ctx f args =
  if f <> Coalesce && List.exists V.is_null args then V.Null
  else
    match (f, args) with
    | Upper, [ V.Str s ] -> V.Str (String.uppercase_ascii s)
    | Lower, [ V.Str s ] -> V.Str (String.lowercase_ascii s)
    | Substr, [ V.Str s; V.Int start ] ->
      let start = max 1 start in
      if start > String.length s then V.Str ""
      else V.Str (String.sub s (start - 1) (String.length s - start + 1))
    | Substr, [ V.Str s; V.Int start; V.Int len ] ->
      let start = max 1 start in
      if start > String.length s || len <= 0 then V.Str ""
      else
        let len = min len (String.length s - start + 1) in
        V.Str (String.sub s (start - 1) len)
    | Char_length, [ V.Str s ] -> V.Int (String.length s)
    | Abs, [ V.Int i ] -> V.Int (abs i)
    | Abs, [ V.Float f ] -> V.Float (Float.abs f)
    | Coalesce, args -> (
      match List.find_opt (fun v -> not (V.is_null v)) args with
      | Some v -> v
      | None -> V.Null)
    | Trim, [ V.Str s ] -> V.Str (String.trim s)
    | Modulo, [ V.Int x; V.Int y ] ->
      if y = 0 then error "modulo by zero" else V.Int (x mod y)
    | _ -> error "bad arguments to SQL function"

and eval_agg ctx kind quantifier arg =
  let rows =
    match ctx.group with
    | Some rows -> rows
    | None -> error "aggregate outside a grouped query"
  in
  let values =
    List.filter_map
      (fun row_env ->
        let v = eval { ctx with env = row_env; group = None } arg in
        if V.is_null v then None else Some v)
      rows
  in
  let values =
    match quantifier with
    | All -> values
    | Distinct_agg ->
      List.fold_left
        (fun acc v -> if List.exists (V.equal v) acc then acc else v :: acc)
        [] values
      |> List.rev
  in
  match kind with
  | Count -> V.Int (List.length values)
  | Min ->
    List.fold_left
      (fun acc v ->
        match acc with
        | V.Null -> v
        | _ -> if V.compare_sql v acc = Some (-1) then v else acc)
      V.Null values
  | Max ->
    List.fold_left
      (fun acc v ->
        match acc with
        | V.Null -> v
        | _ -> if V.compare_sql v acc = Some 1 then v else acc)
      V.Null values
  | Sum | Avg -> (
    if values = [] then V.Null
    else
      let total =
        List.fold_left (fun acc v -> numeric_binop Add acc v) (V.Int 0) values
      in
      match kind with
      | Sum -> total
      | Avg -> numeric_binop Div total (V.Float (float_of_int (List.length values)))
      | _ -> assert false)

(* FROM clause: produce the list of row environments. Scanning a base
   table accounts a full scan on the database's operator statistics. *)
and scan_table_ref ctx ref_ : binding list list =
  match ref_ with
  | Table { table; alias } -> (
    match Database.find_table ctx.db table with
    | Error msg -> error "%s" msg
    | Ok t ->
      Database.record_operator ctx.db (fun stats ->
          stats.Database.full_scans <- stats.Database.full_scans + 1;
          stats.Database.rows_scanned <-
            stats.Database.rows_scanned + Table.row_count t);
      decide ctx "scan %s as %s (%d rows)" table alias (Table.row_count t);
      let cols = Array.of_list (List.map (fun c -> c.Table.col_name) t.Table.columns) in
      List.map
        (fun row -> [ { alias; cols; values = row } ])
        (Table.all_rows t))
  | Derived { query; alias } ->
    let result = run_select { ctx with group = None } query in
    let cols = Array.of_list result.columns in
    List.map (fun row -> [ { alias; cols; values = row } ]) result.rows

(* The base-table access path: an index probe when the WHERE implies one
   and the whole filter/join pipeline is total (so skipped rows cannot
   change error behaviour), otherwise the historical full scan. *)
and scan_from ctx s srcs =
  let fallback () = scan_table_ref ctx s.from in
  match (srcs, s.from) with
  | Some (base :: _ as srcs), Table { table; alias } -> (
    let where_ok =
      match s.where with
      | Some w -> total_truth ctx srcs w
      | None -> false
    in
    let joins_ok =
      (* join ON conditions see only the sources bound so far *)
      List.for_all2
        (fun j n -> total_truth ctx (take (n + 2) srcs) j.on_condition)
        s.joins
        (List.mapi (fun i _ -> i) s.joins)
    in
    if not (where_ok && joins_ok) then fallback ()
    else
      match probe_plan ctx srcs base (Option.get s.where) with
      | None -> fallback ()
      | Some (idx, keys) -> (
        match Database.find_table ctx.db table with
        | Error msg -> error "%s" msg
        | Ok t -> (
          let ctx0 = { ctx with env = []; group = None } in
          match
            List.map
              (fun key_exprs ->
                Array.of_list (List.map (eval ctx0) key_exprs))
              keys
          with
          | exception Sql_error _ ->
            (* a probe value that raises means the scan path raises on
               every row; reproduce that behaviour exactly *)
            fallback ()
          | key_values ->
            Database.record_operator ctx.db (fun stats ->
                stats.Database.index_lookups <-
                  stats.Database.index_lookups + List.length key_values);
            let seen = Hashtbl.create 64 in
            List.iter
              (fun values ->
                List.iter
                  (fun id -> Hashtbl.replace seen id ())
                  (Table.probe_index t idx values))
              key_values;
            let ids =
              Hashtbl.fold (fun id () acc -> id :: acc) seen []
              |> List.sort compare
            in
            Database.record_operator ctx.db (fun stats ->
                stats.Database.index_rows <-
                  stats.Database.index_rows + List.length ids);
            decide ctx "index probe %s.%s [%s] keys=%d rows=%d" table
              (Index.name idx)
              (String.concat "," (Index.columns idx))
              (List.length key_values) (List.length ids);
            let cols =
              Array.of_list (List.map (fun c -> c.Table.col_name) t.Table.columns)
            in
            List.filter_map
              (fun id ->
                match Table.get_row t id with
                | Some row -> Some [ { alias; cols; values = row } ]
                | None -> None)
              ids)))
  | _ -> fallback ()

and null_binding ctx ref_ : binding =
  match ref_ with
  | Table { table; alias } -> (
    match Database.find_table ctx.db table with
    | Error msg -> error "%s" msg
    | Ok t ->
      let cols = Array.of_list (List.map (fun c -> c.Table.col_name) t.Table.columns) in
      { alias; cols; values = Array.make (Array.length cols) V.Null })
  | Derived { query; alias } ->
    let cols = Array.of_list (List.map snd query.projections) in
    { alias; cols; values = Array.make (Array.length cols) V.Null }

(* Join algorithm selection. [srcs] is the prefix of sources visible to
   this join (base, earlier joins, then this join's source last). The
   candidate-generating paths re-evaluate the full ON condition on every
   candidate pair, so they agree with the nested loop exactly; they
   require the ON condition to be total because the nested loop also
   evaluates it on the pairs they skip. *)
and apply_join ctx srcs left_rows join =
  let bump f = Database.record_operator ctx.db f in
  let jalias =
    match join.jtable with
    | Table { alias; _ } | Derived { alias; _ } -> alias
  in
  let nested_loop () =
    bump (fun stats -> stats.Database.nl_joins <- stats.Database.nl_joins + 1);
    decide ctx "nested-loop join %s" jalias;
    let right_rows = scan_table_ref ctx join.jtable in
    let matches left =
      List.filter_map
        (fun right ->
          let env = right @ left in
          match
            value_to_truth (eval { ctx with env; group = None } join.on_condition)
          with
          | V.True -> Some env
          | V.False | V.Unknown -> None)
        right_rows
    in
    join_shape ctx join matches left_rows
  in
  let equi =
    match srcs with
    | None -> None
    | Some srcs ->
      if not (total_truth ctx srcs join.on_condition) then None
      else
        let jsrc =
          List.find_opt (fun s -> String.equal s.s_alias jalias) srcs
        in
        Option.bind jsrc (fun jsrc ->
            let right_col e =
              match e with
              | Col (alias, name) -> (
                match classify srcs alias name with
                | C_local src when src == jsrc -> Some name
                | _ -> None)
              | _ -> None
            in
            (* a left key: total, constant w.r.t. the joined source, and
               evaluable against the left environment alone *)
            let left_ok e =
              match e with
              | Lit _ -> true
              | Param i -> i >= 1 && i <= Array.length ctx.params
              | Col (alias, name) -> (
                match classify srcs alias name with
                | C_local src -> src != jsrc
                | C_ambiguous | C_missing -> false
                | C_outer -> outer_lookup ctx alias name <> None)
              | _ -> false
            in
            let pairs =
              List.filter_map
                (fun c ->
                  match c with
                  | Binop (Eq, a, b) -> (
                    match right_col a with
                    | Some n when left_ok b -> Some (n, b)
                    | _ -> (
                      match right_col b with
                      | Some n when left_ok a -> Some (n, a)
                      | _ -> None))
                  | _ -> None)
                (conjuncts join.on_condition)
            in
            if pairs = [] then None else Some (jsrc, pairs))
  in
  match equi with
  | None -> nested_loop ()
  | Some (jsrc, pairs) -> (
    let right_cols = List.map fst pairs in
    let index =
      match jsrc.s_table with
      | None -> None
      | Some t ->
        List.fold_left
          (fun acc idx ->
            if List.for_all (fun c -> List.mem c right_cols) (Index.columns idx)
            then
              match acc with
              | Some (_, b)
                when List.length (Index.columns b)
                     >= List.length (Index.columns idx) ->
                acc
              | _ -> Some (t, idx)
            else acc)
          None (Table.indexes t)
    in
    match index with
    | Some (t, idx) ->
      (* index nested loop: probe the right table per left row *)
      bump (fun stats ->
          stats.Database.index_joins <- stats.Database.index_joins + 1);
      decide ctx "index-nl join %s via %s.%s" jalias t.Table.table_name
        (Index.name idx);
      let key_exprs = List.map (fun c -> List.assoc c pairs) (Index.columns idx) in
      let cols =
        Array.of_list (List.map (fun c -> c.Table.col_name) t.Table.columns)
      in
      let matches left =
        let lctx = { ctx with env = left; group = None } in
        let values = Array.of_list (List.map (eval lctx) key_exprs) in
        let ids = Table.probe_index t idx values in
        bump (fun stats ->
            stats.Database.index_lookups <- stats.Database.index_lookups + 1;
            stats.Database.index_rows <-
              stats.Database.index_rows + List.length ids);
        List.filter_map
          (fun id ->
            match Table.get_row t id with
            | None -> None
            | Some row ->
              let env = { alias = jalias; cols; values = row } :: left in
              (match
                 value_to_truth
                   (eval { ctx with env; group = None } join.on_condition)
               with
              | V.True -> Some env
              | V.False | V.Unknown -> None))
          ids
      in
      join_shape ctx join matches left_rows
    | None ->
      (* hash equi-join: build once over the right side, probe per left
         row; buckets keep right-scan order *)
      bump (fun stats ->
          stats.Database.hash_joins <- stats.Database.hash_joins + 1);
      decide ctx "hash join %s on [%s]" jalias (String.concat "," right_cols);
      let right_rows = scan_table_ref ctx join.jtable in
      let left_exprs = List.map snd pairs in
      let tbl = Index.Key_tbl.create 256 in
      List.iter
        (fun right ->
          match right with
          | [ b ] -> (
            let values =
              Array.of_list
                (List.map
                   (fun c ->
                     match lookup_in_binding b c with
                     | Some v -> v
                     | None -> V.Null)
                   right_cols)
            in
            if not (Array.exists V.is_null values) then
              let key = Index.key_of_values values in
              match Index.Key_tbl.find_opt tbl key with
              | Some bucket -> bucket := right :: !bucket
              | None -> Index.Key_tbl.add tbl key (ref [ right ]))
          | _ -> ())
        right_rows;
      Index.Key_tbl.iter (fun _ bucket -> bucket := List.rev !bucket) tbl;
      let matches left =
        let lctx = { ctx with env = left; group = None } in
        let values = Array.of_list (List.map (eval lctx) left_exprs) in
        if Array.exists V.is_null values then []
        else
          match Index.Key_tbl.find_opt tbl (Index.key_of_values values) with
          | None -> []
          | Some bucket ->
            List.filter_map
              (fun right ->
                let env = right @ left in
                match
                  value_to_truth
                    (eval { ctx with env; group = None } join.on_condition)
                with
                | V.True -> Some env
                | V.False | V.Unknown -> None)
              !bucket
      in
      join_shape ctx join matches left_rows)

and join_shape ctx join matches left_rows =
  match join.jkind with
  | Inner -> List.concat_map matches left_rows
  | Left_outer ->
    let null_right = null_binding ctx join.jtable in
    List.concat_map
      (fun left ->
        match matches left with
        | [] -> [ null_right :: left ]
        | found -> found)
      left_rows

(* [SELECT *] expansion: replace a star projection with one column per
   column of every FROM/JOIN binding, qualified by alias. *)
and expand_star ctx s =
  let is_star = function Col (None, "*"), _ -> true | _ -> false in
  if not (List.exists is_star s.projections) then s
  else
    let refs = s.from :: List.map (fun j -> j.jtable) s.joins in
    let expanded =
      List.concat_map
        (fun ref_ ->
          let b = null_binding ctx ref_ in
          Array.to_list b.cols
          |> List.map (fun c -> (Col (Some b.alias, c), c)))
        refs
    in
    let projections =
      List.concat_map
        (fun p -> if is_star p then expanded else [ p ])
        s.projections
    in
    { s with projections }

(* The SELECT pipeline with a lazy tail: everything through grouping,
   HAVING and ORDER BY runs eagerly (those stages are pipeline breakers
   or access-path decisions that must land before the plan is read), but
   the final projection is a [Seq.t] forced row by row — the engine-side
   iteration a cursor fetches in chunks. DISTINCT and windowed queries
   keep their eager dedup/early-exit tails and stream a prebuilt list. *)
and run_select_streamed outer_ctx s : string list * V.t array Seq.t =
  let ctx = { outer_ctx with outer = Some outer_ctx; group = None } in
  let s = expand_star ctx s in
  let srcs = if ctx.db.Database.use_indexes then sources_of ctx s else None in
  let rows = scan_from ctx s srcs in
  let rows, _ =
    List.fold_left
      (fun (acc, i) j ->
        let prefix = Option.map (take (i + 2)) srcs in
        (apply_join ctx prefix acc j, i + 1))
      (rows, 0) s.joins
  in
  let rows =
    match s.where with
    | None -> rows
    | Some cond ->
      List.filter
        (fun env ->
          value_to_truth (eval { ctx with env; group = None } cond) = V.True)
        rows
  in
  let is_aggregate_query =
    s.group_by <> []
    || List.exists
         (fun (e, _) ->
           let rec has_agg = function
             | Count_star | Agg _ -> true
             | Binop (_, a, b) -> has_agg a || has_agg b
             | Not e | Is_null e | Is_not_null e -> has_agg e
             | Case (branches, default) ->
               List.exists (fun (c, v) -> has_agg c || has_agg v) branches
               || Option.fold ~none:false ~some:has_agg default
             | Func (_, args) -> List.exists has_agg args
             | In_list (e, es) -> has_agg e || List.exists has_agg es
             | Col _ | Lit _ | Param _ | In_select _ | Exists _ | Not_exists _
             | Scalar_select _ ->
               false
           in
           has_agg e)
         s.projections
  in
  (* Each logical row of the rest of the pipeline is (env, group): for
     grouped queries env is a representative row and group holds the
     members; otherwise group is a singleton. *)
  let logical_rows =
    if not is_aggregate_query then List.map (fun env -> (env, [ env ])) rows
    else if s.group_by = [] then
      (* implicit single group, even when empty *)
      match rows with
      | [] -> [ ([], []) ]
      | first :: _ -> [ (first, rows) ]
    else begin
      let groups : (V.t list * binding list list ref) list ref = ref [] in
      List.iter
        (fun env ->
          let key =
            List.map (fun e -> eval { ctx with env; group = None } e) s.group_by
          in
          match
            List.find_opt (fun (k, _) -> List.for_all2 V.equal k key) !groups
          with
          | Some (_, members) -> members := env :: !members
          | None -> groups := !groups @ [ (key, ref [ env ]) ])
        rows;
      List.map
        (fun (_, members) ->
          let members = List.rev !members in
          match members with
          | [] -> assert false
          | first :: _ -> (first, members))
        !groups
    end
  in
  let logical_rows =
    match s.having with
    | None -> logical_rows
    | Some cond ->
      List.filter
        (fun (env, group) ->
          value_to_truth (eval { ctx with env; group = Some group } cond)
          = V.True)
        logical_rows
  in
  let logical_rows =
    if s.order_by = [] then logical_rows
    else
      let keyed =
        List.map
          (fun (env, group) ->
            let keys =
              List.map
                (fun o -> eval { ctx with env; group = Some group } o.sort_expr)
                s.order_by
            in
            (keys, (env, group)))
          logical_rows
      in
      let cmp (ka, _) (kb, _) =
        let rec go ks1 ks2 os =
          match (ks1, ks2, os) with
          | [], [], [] -> 0
          | k1 :: r1, k2 :: r2, o :: ro -> (
            let c =
              (* NULLs sort first ascending, mirroring common backends *)
              match (k1, k2) with
              | V.Null, V.Null -> 0
              | V.Null, _ -> -1
              | _, V.Null -> 1
              | _ -> Option.value (V.compare_sql k1 k2) ~default:0
            in
            let c = if o.descending then -c else c in
            match c with 0 -> go r1 r2 ro | c -> c)
          | _ -> 0
        in
        go ka kb s.order_by
      in
      List.map snd (List.stable_sort cmp keyed)
  in
  let project (env, group) =
    Array.of_list
      (List.map
         (fun (e, _) -> eval { ctx with env; group = Some group } e)
         s.projections)
  in
  let projected : V.t array Seq.t =
    match s.window with
    | None when not s.distinct ->
      Seq.map project (List.to_seq logical_rows)
    | None ->
      let projected = List.map project logical_rows in
      List.to_seq
        (List.rev
           (List.fold_left
              (fun acc row ->
                if
                  List.exists
                    (fun seen -> Array.for_all2 V.equal seen row)
                    acc
                then acc
                else row :: acc)
              [] projected))
    | Some { start; count } ->
      (* early exit: project (and deduplicate) incrementally, stopping as
         soon as the last requested row position has been produced, so
         ROWNUM/FETCH FIRST pushdowns stop paying for discarded rows *)
      let upper = match count with Some n -> Some (start + n - 1) | None -> None in
      let seen = ref [] in
      let kept = ref [] in
      let pos = ref 0 in
      let exception Done in
      (try
         List.iter
           (fun lr ->
             let row = project lr in
             let fresh =
               (not s.distinct)
               ||
               if List.exists (fun r -> Array.for_all2 V.equal r row) !seen
               then false
               else begin
                 seen := row :: !seen;
                 true
               end
             in
             if fresh then begin
               incr pos;
               let within =
                 !pos >= start
                 && match upper with Some u -> !pos <= u | None -> true
               in
               if within then kept := row :: !kept;
               match upper with
               | Some u when !pos >= u -> raise Done
               | _ -> ()
             end)
           logical_rows
       with Done -> ());
      List.to_seq (List.rev !kept)
  in
  (List.map snd s.projections, projected)

and run_select outer_ctx s : result_set =
  let columns, rows = run_select_streamed outer_ctx s in
  { columns; rows = List.of_seq rows }

let root_context db params =
  { env = []; outer = None; group = None; params; db; decisions = ref [] }

(* ------------------------------------------------------------------ *)
(* Cursors: chunked fetch over the same access paths.

   Opening a cursor consumes the fault schedule, runs the eager part of
   the pipeline (scans, joins, grouping, ordering — where every
   access-path decision lands) and accounts the single statement
   roundtrip, latency included; fetching then forces the projection a
   chunk at a time, adding shipped rows incrementally. A fully drained
   cursor leaves the database statistics and [last_plan] exactly as the
   materialized [query_explained] would.

   One accounting nuance: a projection that errors mid-fetch (a scalar
   subquery dividing by zero, say) has already recorded its statement —
   it genuinely reached the wire — where the historical all-at-once path
   recorded nothing. Both sides of the differential oracle share this
   path, and success paths are byte- and counter-identical. *)

type cursor = {
  cur_db : Database.t;
  cur_columns : string list;
  mutable cur_rest : V.t array Seq.t;
  cur_decisions : string list ref;
  mutable cur_done : bool;
}

let default_chunk_rows = 64

let open_cursor db ?(params = [||]) s =
  match Database.apply_fault db with
  | Error msg ->
    (* the statement reached the wire: account the roundtrip *)
    Database.open_statement db ~params:(Array.length params);
    Error msg
  | Ok () -> (
    let ctx = root_context db params in
    match run_select_streamed ctx s with
    | columns, rows ->
      Database.open_statement db ~params:(Array.length params);
      Ok
        { cur_db = db;
          cur_columns = columns;
          cur_rest = rows;
          cur_decisions = ctx.decisions;
          cur_done = false }
    | exception Sql_error msg ->
      Database.set_last_plan db (List.rev !(ctx.decisions));
      Error msg)

let cursor_columns cur = cur.cur_columns

(* Plan lines are complete once the cursor is drained: projection-level
   subqueries may still append decisions while rows are being fetched. *)
let cursor_plan cur = List.rev !(cur.cur_decisions)

let cursor_finish cur =
  cur.cur_done <- true;
  cur.cur_rest <- Seq.empty;
  Database.set_last_plan cur.cur_db (cursor_plan cur)

let fetch_chunk ?(rows = default_chunk_rows) cur =
  if cur.cur_done then Ok []
  else begin
    let n = max 1 rows in
    let rec take k seq acc =
      if k = 0 then (List.rev acc, seq)
      else
        match seq () with
        | Seq.Nil -> (List.rev acc, Seq.empty)
        | Seq.Cons (row, rest) -> take (k - 1) rest (row :: acc)
    in
    match take n cur.cur_rest [] with
    | chunk, rest ->
      cur.cur_rest <- rest;
      let shipped = List.length chunk in
      Database.ship_rows cur.cur_db shipped;
      if shipped < n then cursor_finish cur;
      Ok chunk
    | exception Sql_error msg ->
      cursor_finish cur;
      Error msg
  end

let query_explained db ?(params = [||]) s =
  match open_cursor db ~params s with
  | Error msg -> Error msg
  | Ok cur -> (
    let rec drain acc =
      match fetch_chunk cur with
      | Error msg -> Error msg
      | Ok [] -> Ok (List.rev acc)
      | Ok chunk -> drain (List.rev_append chunk acc)
    in
    match drain [] with
    | Error msg -> Error msg
    | Ok rows -> Ok ({ columns = cursor_columns cur; rows }, cursor_plan cur))

let query db ?params s =
  match query_explained db ?params s with
  | Ok (result, _) -> Ok result
  | Error _ as e -> e

(* How a streamed statement comes back: a live cursor for direct
   statements, or a whole shared result set when work sharing served it
   (followers share the leader's materialized rows). *)
type streamed =
  | Rows of result_set * string list * bool
  | Cursor of cursor

(* ------------------------------------------------------------------ *)
(* Cross-session work sharing.

   Two mechanisms, both opt-in per database ([share_work]) and both
   keyed on the database's statistics version, so a DML between two
   readers splits them into different epochs: a reader admitted after
   the write can never join (or be served by) a flight started against
   the pre-write data.

   1. Single-flight coalescing: byte-identical parameterized statements
      issued concurrently execute once; the followers share the leader's
      result set and account a saved roundtrip.

   2. Batched dispatch: compatible single-key equality probes arriving
      within a short adaptive accumulation window merge into one
      IN-list-shaped roundtrip (the same disjunctive-probe shape PP-k
      ships), executed by the window's leader.

   Sharing never runs while a fault schedule is active: scripted events
   must align with statements one-to-one, and a coalesced statement
   would consume anothers session's scripted fault. *)

module Singleflight = Aldsp_concurrency.Singleflight
module Cancel = Aldsp_concurrency.Cancel

(* Statement identity: database (by uid — names recur across fuzz
   catalogs), statistics epoch, and the marshalled (statement, params)
   pair. Sql_ast and Sql_value are pure data, so marshalling is a
   faithful structural fingerprint. *)
let statement_key db params s =
  Printf.sprintf "%d\x00%d\x00%s" db.Database.db_uid
    (Database.stats_version db)
    (Marshal.to_string (s, params) [])

let flights : (result_set * string list, string) result Singleflight.t =
  Singleflight.create ()

(* Engine-only execution: runs the statement without roundtrip
   accounting or latency. Work sharing uses it to serve each member of a
   merged batch from the one accounted wire statement. *)
let engine_exec db params s =
  let ctx = root_context db params in
  match run_select ctx s with
  | result ->
    let plan = List.rev !(ctx.decisions) in
    Database.set_last_plan db plan;
    Ok (result, plan)
  | exception Sql_error msg ->
    Database.set_last_plan db (List.rev !(ctx.decisions));
    Error msg

let count_saved db ~merged =
  Database.record_operator db (fun st ->
      if merged then st.Database.batch_merges <- st.Database.batch_merges + 1
      else st.Database.coalesced_hits <- st.Database.coalesced_hits + 1;
      st.Database.dedup_roundtrips_saved <-
        st.Database.dedup_roundtrips_saved + 1)

let coalesced_query db params s =
  match
    Singleflight.run flights (statement_key db params s) (fun () ->
        query_explained db ~params s)
  with
  | Singleflight.Led r -> (
    match r with
    | Ok (rs, plan) -> Ok (rs, plan, false)
    | Error e -> Error e)
  | Singleflight.Joined r -> (
    count_saved db ~merged:false;
    match r with
    | Ok (rs, plan) -> Ok (rs, plan, true)
    | Error e -> Error e)

(* ---- batched single-key dispatch ---------------------------------- *)

(* A batchable probe: one table, no joins, and a WHERE that is a single
   equality between a column and a constant key — the pushed-selection /
   cache-lookup shape. Everything but the key value participates in the
   group identity, so only structurally identical probes merge. *)
let probe_shape params (s : select) =
  match (s.from, s.joins, s.where) with
  | Table _, [], Some (Binop (Eq, (Col _ as keycol), rhs)) -> (
    match rhs with
    | Lit _ when Array.length params = 0 -> Some keycol
    | Param 1 when Array.length params = 1 -> Some keycol
    | _ -> None)
  | _ -> None

let group_key db keycol (s : select) =
  (* the statement with the key value blanked out: members of one group
     differ only in the probe key *)
  let normalized = { s with where = Some (Binop (Eq, keycol, Param 0)) } in
  Printf.sprintf "%d\x00%d\x00batch\x00%s" db.Database.db_uid
    (Database.stats_version db)
    (Marshal.to_string normalized [])

(* The merged statement stays worth one roundtrip only while the block
   is small enough that probing beats shipping — the cost model's k* =
   sqrt(latency / row_cost) block size, clamped like {!Cost_model.choose_k}
   to [5, 50]. *)
let batch_cap db =
  let latency, row_cost = Database.cost_profile db in
  let k = int_of_float (Float.sqrt (latency /. Float.max row_cost 1e-9)) in
  max 5 (min 50 k)

let window_floor = 50e-6

let window_cap db = Float.max window_floor (db.Database.roundtrip_latency /. 2.)

type batch_member = {
  bm_select : select;
  bm_params : V.t array;
  mutable bm_outcome : (result_set * string list, string) result option;
}

type batch_group = {
  mutable bg_members : batch_member list;  (* newest first *)
  mutable bg_open : bool;  (* accepting joiners *)
  mutable bg_done : bool;  (* outcomes filled *)
}

let batches : (string, batch_group) Hashtbl.t = Hashtbl.create 16
let batch_mutex = Mutex.create ()
let batch_done = Condition.create ()

(* Member side: wait (cancellation-aware, like every serving-layer wait)
   until the leader fills the outcomes. A member whose token fires
   abandons the batch alone; the leader serves its slot harmlessly. *)
let rec await_batch g =
  if not g.bg_done then begin
    let tok = Cancel.current () in
    if tok == Cancel.none then Condition.wait batch_done batch_mutex
    else begin
      Mutex.unlock batch_mutex;
      Cancel.check tok;
      Thread.delay 0.0005;
      Mutex.lock batch_mutex
    end;
    await_batch g
  end

(* Leader side: hold the window open, polling in small chunks so a group
   reaching the cost-model cap dispatches early, then close and execute.
   The window sleep is plain (not cancellation-aware): it is bounded by
   half a roundtrip, and the leader owes the members a dispatch. *)
let run_batch_leader db gkey g =
  let window = db.Database.batch_window in
  let chunk = Float.max (window /. 8.) 20e-6 in
  let deadline = Unix.gettimeofday () +. window in
  let rec hold () =
    Mutex.lock batch_mutex;
    let still_open = g.bg_open in
    Mutex.unlock batch_mutex;
    if still_open && Unix.gettimeofday () < deadline then begin
      Thread.delay chunk;
      hold ()
    end
  in
  hold ();
  Mutex.lock batch_mutex;
  if g.bg_open then begin
    g.bg_open <- false;
    Hashtbl.remove batches gkey
  end;
  let members = List.rev g.bg_members in
  Mutex.unlock batch_mutex;
  let n = List.length members in
  (* adapt: solo windows shrink towards the floor (don't stall sparse
     traffic), merged windows grow towards half a roundtrip (catch more
     of a burst) *)
  db.Database.batch_window <-
    (if n <= 1 then Float.max window_floor (window /. 2.)
     else Float.min (window_cap db) (Float.max window_floor (window *. 1.5)));
  (match Database.apply_fault db with
  | Error msg ->
    List.iter (fun m -> m.bm_outcome <- Some (Error msg)) members;
    Mutex.lock batch_mutex;
    g.bg_done <- true;
    Condition.broadcast batch_done;
    Mutex.unlock batch_mutex;
    Database.record_statement db ~params:0 ~rows:0
  | Ok () ->
    (* the batch pays one wire statement: each member's probe answered
       from it (engine-level, unaccounted), then a single roundtrip
       recorded with the merged parameter and shipped-row totals — the
       IN-list accounting *)
    List.iter
      (fun m -> m.bm_outcome <- Some (engine_exec db m.bm_params m.bm_select))
      members;
    Mutex.lock batch_mutex;
    g.bg_done <- true;
    Condition.broadcast batch_done;
    Mutex.unlock batch_mutex;
    let rows =
      List.fold_left
        (fun acc m ->
          match m.bm_outcome with
          | Some (Ok (rs, _)) -> acc + List.length rs.rows
          | _ -> acc)
        0 members
    in
    let params =
      List.fold_left
        (fun acc m -> acc + max 1 (Array.length m.bm_params))
        0 members
    in
    Database.record_statement db ~params ~rows)

let batched_probe db params s keycol =
  let gkey = group_key db keycol s in
  let me = { bm_select = s; bm_params = params; bm_outcome = None } in
  Mutex.lock batch_mutex;
  let role =
    match Hashtbl.find_opt batches gkey with
    | Some g when g.bg_open ->
      g.bg_members <- me :: g.bg_members;
      if List.length g.bg_members >= batch_cap db then begin
        (* cost-model cap reached: close the window early *)
        g.bg_open <- false;
        Hashtbl.remove batches gkey
      end;
      `Member g
    | _ ->
      let g = { bg_members = [ me ]; bg_open = true; bg_done = false } in
      Hashtbl.replace batches gkey g;
      `Leader g
  in
  (match role with
  | `Leader g ->
    Mutex.unlock batch_mutex;
    run_batch_leader db gkey g
  | `Member g ->
    (* if the wait raises (member cancelled), the lock was released by
       the polling branch — the exception must skip this unlock *)
    await_batch g;
    Mutex.unlock batch_mutex);
  match me.bm_outcome with
  | Some (Ok (rs, plan)) ->
    let merged = match role with `Member _ -> true | `Leader _ -> false in
    if merged then count_saved db ~merged:true;
    Ok (rs, plan, merged)
  | Some (Error msg) -> Error msg
  | None -> (
    (* only reachable if the leader died before filling outcomes (it
       executes members before any cancellable sleep, so this is a
       crash-containment path): retry rather than inherit *)
    match query_explained db ~params s with
    | Ok (rs, plan) -> Ok (rs, plan, false)
    | Error e -> Error e)

(* The shared entry point: like {!query_explained} but with work sharing
   when the database opts in; the extra boolean reports whether this
   statement was served from another session's work (for the
   EXPLAIN-level shared= counters). *)
let query_shared db ?(params = [||]) s =
  if (not db.Database.share_work) || Database.schedule_remaining db > 0 then
    match query_explained db ~params s with
    | Ok (rs, plan) -> Ok (rs, plan, false)
    | Error e -> Error e
  else
    match probe_shape params s with
    | Some keycol when db.Database.roundtrip_latency > 0. ->
      batched_probe db params s keycol
    | _ -> coalesced_query db params s

(* The streaming entry point the executor's pushed regions drain: a
   direct statement hands back a live cursor; under active work sharing
   the statement goes through {!query_shared} unchanged — followers share
   one materialized result set, which [Rows] carries whole. The gate
   mirrors {!query_shared}'s own. *)
let query_stream db ?(params = [||]) s =
  if (not db.Database.share_work) || Database.schedule_remaining db > 0 then
    match open_cursor db ~params s with
    | Ok cur -> Ok (Cursor cur)
    | Error e -> Error e
  else
    match query_shared db ~params s with
    | Ok (rs, plan, shared) -> Ok (Rows (rs, plan, shared))
    | Error e -> Error e

let execute_dml db ?(params = [||]) dml =
  match Database.apply_fault db with
  | Error msg ->
    Database.record_statement db ~params:(Array.length params) ~rows:0;
    Error msg
  | Ok () ->
  let ctx = root_context db params in
  match dml with
  | Insert { table; columns; values } -> (
    match Database.find_table db table with
    | Error msg -> Error msg
    | Ok t -> (
      match
        let provided = List.map (eval ctx) values in
        let row =
          Array.of_list
            (List.map
               (fun c ->
                 let rec find cs vs =
                   match (cs, vs) with
                   | [], _ | _, [] -> V.Null
                   | c' :: _, v :: _ when String.equal c' c.Table.col_name -> v
                   | _ :: cs, _ :: vs -> find cs vs
                 in
                 find columns provided)
               t.Table.columns)
        in
        Table.insert t row
      with
      | Ok () ->
        Database.record_statement db ~params:(Array.length params) ~rows:1;
        Ok 1
      | Error msg -> Error msg
      | exception Sql_error msg -> Error msg))
  | Update { table; assignments; where } -> (
    match Database.find_table db table with
    | Error msg -> Error msg
    | Ok t -> (
      try
        let cols =
          Array.of_list (List.map (fun c -> c.Table.col_name) t.Table.columns)
        in
        (* decide every update first, then apply: an evaluation error
           leaves the table untouched, as the historical list-rebuild
           did *)
        let updates = ref [] in
        Table.iter_rows t (fun id row ->
            let env = [ { alias = table; cols; values = row } ] in
            let selected =
              match where with
              | None -> true
              | Some cond ->
                value_to_truth (eval { ctx with env } cond) = V.True
            in
            if selected then begin
              let row' = Array.copy row in
              List.iter
                (fun (c, e) ->
                  match Table.column_index t c with
                  | Some i -> row'.(i) <- eval { ctx with env } e
                  | None -> error "no column %s in table %s" c table)
                assignments;
              updates := (id, row') :: !updates
            end);
        let updates = List.rev !updates in
        List.iter (fun (id, row') -> Table.update_row t id row') updates;
        let affected = List.length updates in
        Database.record_statement db ~params:(Array.length params)
          ~rows:affected;
        Ok affected
      with Sql_error msg -> Error msg))
  | Delete { table; where } -> (
    match Database.find_table db table with
    | Error msg -> Error msg
    | Ok t -> (
      try
        let cols =
          Array.of_list (List.map (fun c -> c.Table.col_name) t.Table.columns)
        in
        let victims = ref [] in
        Table.iter_rows t (fun id row ->
            let env = [ { alias = table; cols; values = row } ] in
            let selected =
              match where with
              | None -> true
              | Some cond ->
                value_to_truth (eval { ctx with env } cond) = V.True
            in
            if selected then victims := id :: !victims);
        List.iter (Table.delete_row t) !victims;
        let dropped = List.length !victims in
        Database.record_statement db ~params:(Array.length params)
          ~rows:dropped;
        Ok dropped
      with Sql_error msg -> Error msg))
