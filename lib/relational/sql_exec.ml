open Sql_ast
module V = Sql_value

type result_set = {
  columns : string list;
  rows : V.t array list;
}

(* A binding maps an alias to one row: column names (positional) plus the
   row values. Derived tables bind their projection aliases. *)
type binding = { alias : string; cols : string array; values : V.t array }

type context = {
  env : binding list;
  outer : context option;  (* for correlated subqueries *)
  group : binding list list option;  (* rows of the current group *)
  params : V.t array;
  db : Database.t;
}

exception Sql_error of string

let error fmt = Printf.ksprintf (fun msg -> raise (Sql_error msg)) fmt

let lookup_in_binding b name =
  let rec go i =
    if i >= Array.length b.cols then None
    else if String.equal b.cols.(i) name then Some b.values.(i)
    else go (i + 1)
  in
  go 0

let rec lookup_col ctx alias name =
  let here =
    match alias with
    | Some a ->
      List.find_map
        (fun b -> if String.equal b.alias a then lookup_in_binding b name else None)
        ctx.env
    | None -> List.find_map (fun b -> lookup_in_binding b name) ctx.env
  in
  match here with
  | Some v -> Some v
  | None -> (
    match ctx.outer with
    | Some outer -> lookup_col outer alias name
    | None -> None)

let truth_to_value = function
  | V.True -> V.Bool true
  | V.False -> V.Bool false
  | V.Unknown -> V.Null

let value_to_truth = function
  | V.Null -> V.Unknown
  | V.Bool true -> V.True
  | V.Bool false -> V.False
  | V.Int 0 -> V.False
  | V.Int _ -> V.True
  | v -> error "expected a boolean, got %s" (V.to_string v)

let numeric_binop op a b =
  match (a, b) with
  | V.Null, _ | _, V.Null -> V.Null
  | V.Int x, V.Int y -> (
    match op with
    | Add -> V.Int (x + y)
    | Sub -> V.Int (x - y)
    | Mul -> V.Int (x * y)
    | Div -> if y = 0 then error "division by zero" else V.Int (x / y)
    | _ -> assert false)
  | _ ->
    let as_f = function
      | V.Int i -> float_of_int i
      | V.Float f -> f
      | V.Timestamp f -> f
      | v -> error "arithmetic on non-numeric %s" (V.to_string v)
    in
    let x = as_f a and y = as_f b in
    let r =
      match op with
      | Add -> x +. y
      | Sub -> x -. y
      | Mul -> x *. y
      | Div -> if y = 0. then error "division by zero" else x /. y
      | _ -> assert false
    in
    V.Float r

let like_match pattern text =
  (* SQL LIKE: '%' = any run, '_' = any single char. *)
  let np = String.length pattern and nt = String.length text in
  let rec go pi ti =
    if pi = np then ti = nt
    else
      match pattern.[pi] with
      | '%' ->
        let rec try_from t = t <= nt && (go (pi + 1) t || try_from (t + 1)) in
        try_from ti
      | '_' -> ti < nt && go (pi + 1) (ti + 1)
      | c -> ti < nt && text.[ti] = c && go (pi + 1) (ti + 1)
  in
  go 0 0

let rec eval ctx e : V.t =
  match e with
  | Col (alias, name) -> (
    match lookup_col ctx alias name with
    | Some v -> v
    | None ->
      error "unknown column %s%s"
        (match alias with Some a -> a ^ "." | None -> "")
        name)
  | Lit v -> v
  | Param i ->
    if i < 1 || i > Array.length ctx.params then
      error "parameter ?%d not bound" i
    else ctx.params.(i - 1)
  | Binop (And, a, b) ->
    truth_to_value
      (V.and_ (value_to_truth (eval ctx a)) (value_to_truth (eval ctx b)))
  | Binop (Or, a, b) ->
    truth_to_value
      (V.or_ (value_to_truth (eval ctx a)) (value_to_truth (eval ctx b)))
  | Binop (((Eq | Neq | Lt | Le | Gt | Ge) as op), a, b) ->
    let pred =
      match op with
      | Eq -> fun c -> c = 0
      | Neq -> fun c -> c <> 0
      | Lt -> fun c -> c < 0
      | Le -> fun c -> c <= 0
      | Gt -> fun c -> c > 0
      | Ge -> fun c -> c >= 0
      | _ -> assert false
    in
    truth_to_value (V.truth_of_comparison pred (eval ctx a) (eval ctx b))
  | Binop (((Add | Sub | Mul | Div) as op), a, b) ->
    numeric_binop op (eval ctx a) (eval ctx b)
  | Binop (Concat, a, b) -> (
    match (eval ctx a, eval ctx b) with
    | V.Null, _ | _, V.Null -> V.Null
    | x, y ->
      let plain = function
        | V.Str s -> s
        | v -> V.to_string v
      in
      V.Str (plain x ^ plain y))
  | Binop (Like, a, b) -> (
    match (eval ctx a, eval ctx b) with
    | V.Null, _ | _, V.Null -> V.Null
    | V.Str text, V.Str pattern -> V.Bool (like_match pattern text)
    | _ -> error "LIKE requires string operands")
  | Not e -> truth_to_value (V.not_ (value_to_truth (eval ctx e)))
  | Is_null e -> V.Bool (V.is_null (eval ctx e))
  | Is_not_null e -> V.Bool (not (V.is_null (eval ctx e)))
  | In_list (e, items) ->
    let v = eval ctx e in
    if V.is_null v then V.Null
    else
      let vs = List.map (eval ctx) items in
      let any_eq =
        List.exists (fun x -> V.truth_of_comparison (( = ) 0) v x = V.True) vs
      in
      if any_eq then V.Bool true
      else if List.exists V.is_null vs then V.Null
      else V.Bool false
  | In_select (e, s) ->
    let v = eval ctx e in
    if V.is_null v then V.Null
    else
      let result = run_select { ctx with group = None } s in
      let col_values = List.map (fun row -> row.(0)) result.rows in
      if List.exists (fun x -> V.truth_of_comparison (( = ) 0) v x = V.True) col_values
      then V.Bool true
      else if List.exists V.is_null col_values then V.Null
      else V.Bool false
  | Exists s ->
    let result = run_select { ctx with group = None } s in
    V.Bool (result.rows <> [])
  | Not_exists s ->
    let result = run_select { ctx with group = None } s in
    V.Bool (result.rows = [])
  | Case (branches, default) ->
    let rec try_branches = function
      | [] -> ( match default with Some d -> eval ctx d | None -> V.Null)
      | (cond, value) :: rest -> (
        match value_to_truth (eval ctx cond) with
        | V.True -> eval ctx value
        | V.False | V.Unknown -> try_branches rest)
    in
    try_branches branches
  | Func (f, args) -> eval_func ctx f (List.map (eval ctx) args)
  | Count_star -> (
    match ctx.group with
    | Some rows -> V.Int (List.length rows)
    | None -> error "COUNT(*) outside a grouped query")
  | Agg (kind, quantifier, arg) -> eval_agg ctx kind quantifier arg
  | Scalar_select s -> (
    let result = run_select { ctx with group = None } s in
    match result.rows with
    | [] -> V.Null
    | [ row ] -> row.(0)
    | _ :: _ :: _ -> error "scalar subquery returned more than one row")

and eval_func _ctx f args =
  if f <> Coalesce && List.exists V.is_null args then V.Null
  else
    match (f, args) with
    | Upper, [ V.Str s ] -> V.Str (String.uppercase_ascii s)
    | Lower, [ V.Str s ] -> V.Str (String.lowercase_ascii s)
    | Substr, [ V.Str s; V.Int start ] ->
      let start = max 1 start in
      if start > String.length s then V.Str ""
      else V.Str (String.sub s (start - 1) (String.length s - start + 1))
    | Substr, [ V.Str s; V.Int start; V.Int len ] ->
      let start = max 1 start in
      if start > String.length s || len <= 0 then V.Str ""
      else
        let len = min len (String.length s - start + 1) in
        V.Str (String.sub s (start - 1) len)
    | Char_length, [ V.Str s ] -> V.Int (String.length s)
    | Abs, [ V.Int i ] -> V.Int (abs i)
    | Abs, [ V.Float f ] -> V.Float (Float.abs f)
    | Coalesce, args -> (
      match List.find_opt (fun v -> not (V.is_null v)) args with
      | Some v -> v
      | None -> V.Null)
    | Trim, [ V.Str s ] -> V.Str (String.trim s)
    | Modulo, [ V.Int x; V.Int y ] ->
      if y = 0 then error "modulo by zero" else V.Int (x mod y)
    | _ -> error "bad arguments to SQL function"

and eval_agg ctx kind quantifier arg =
  let rows =
    match ctx.group with
    | Some rows -> rows
    | None -> error "aggregate outside a grouped query"
  in
  let values =
    List.filter_map
      (fun row_env ->
        let v = eval { ctx with env = row_env; group = None } arg in
        if V.is_null v then None else Some v)
      rows
  in
  let values =
    match quantifier with
    | All -> values
    | Distinct_agg ->
      List.fold_left
        (fun acc v -> if List.exists (V.equal v) acc then acc else v :: acc)
        [] values
      |> List.rev
  in
  match kind with
  | Count -> V.Int (List.length values)
  | Min ->
    List.fold_left
      (fun acc v ->
        match acc with
        | V.Null -> v
        | _ -> if V.compare_sql v acc = Some (-1) then v else acc)
      V.Null values
  | Max ->
    List.fold_left
      (fun acc v ->
        match acc with
        | V.Null -> v
        | _ -> if V.compare_sql v acc = Some 1 then v else acc)
      V.Null values
  | Sum | Avg -> (
    if values = [] then V.Null
    else
      let total =
        List.fold_left (fun acc v -> numeric_binop Add acc v) (V.Int 0) values
      in
      match kind with
      | Sum -> total
      | Avg -> numeric_binop Div total (V.Float (float_of_int (List.length values)))
      | _ -> assert false)

(* FROM clause: produce the list of row environments. *)
and scan_table_ref ctx ref_ : binding list list =
  match ref_ with
  | Table { table; alias } -> (
    match Database.find_table ctx.db table with
    | Error msg -> error "%s" msg
    | Ok t ->
      let cols = Array.of_list (List.map (fun c -> c.Table.col_name) t.Table.columns) in
      List.map
        (fun row -> [ { alias; cols; values = row } ])
        (Table.all_rows t))
  | Derived { query; alias } ->
    let result = run_select { ctx with group = None } query in
    let cols = Array.of_list result.columns in
    List.map (fun row -> [ { alias; cols; values = row } ]) result.rows

and null_binding ctx ref_ : binding =
  match ref_ with
  | Table { table; alias } -> (
    match Database.find_table ctx.db table with
    | Error msg -> error "%s" msg
    | Ok t ->
      let cols = Array.of_list (List.map (fun c -> c.Table.col_name) t.Table.columns) in
      { alias; cols; values = Array.make (Array.length cols) V.Null })
  | Derived { query; alias } ->
    let cols = Array.of_list (List.map snd query.projections) in
    { alias; cols; values = Array.make (Array.length cols) V.Null }

and apply_join ctx left_rows join =
  let right_rows = scan_table_ref ctx join.jtable in
  let matches left =
    List.filter_map
      (fun right ->
        let env = right @ left in
        match value_to_truth (eval { ctx with env; group = None } join.on_condition) with
        | V.True -> Some env
        | V.False | V.Unknown -> None)
      right_rows
  in
  match join.jkind with
  | Inner -> List.concat_map matches left_rows
  | Left_outer ->
    let null_right = null_binding ctx join.jtable in
    List.concat_map
      (fun left ->
        match matches left with
        | [] -> [ null_right :: left ]
        | found -> found)
      left_rows

(* [SELECT *] expansion: replace a star projection with one column per
   column of every FROM/JOIN binding, qualified by alias. *)
and expand_star ctx s =
  let is_star = function Col (None, "*"), _ -> true | _ -> false in
  if not (List.exists is_star s.projections) then s
  else
    let refs = s.from :: List.map (fun j -> j.jtable) s.joins in
    let expanded =
      List.concat_map
        (fun ref_ ->
          let b = null_binding ctx ref_ in
          Array.to_list b.cols
          |> List.map (fun c -> (Col (Some b.alias, c), c)))
        refs
    in
    let projections =
      List.concat_map
        (fun p -> if is_star p then expanded else [ p ])
        s.projections
    in
    { s with projections }

and run_select outer_ctx s : result_set =
  let ctx = { outer_ctx with outer = Some outer_ctx; group = None } in
  let s = expand_star ctx s in
  let rows = scan_table_ref ctx s.from in
  let rows = List.fold_left (fun acc j -> apply_join ctx acc j) rows s.joins in
  let rows =
    match s.where with
    | None -> rows
    | Some cond ->
      List.filter
        (fun env ->
          value_to_truth (eval { ctx with env; group = None } cond) = V.True)
        rows
  in
  let is_aggregate_query =
    s.group_by <> []
    || List.exists
         (fun (e, _) ->
           let rec has_agg = function
             | Count_star | Agg _ -> true
             | Binop (_, a, b) -> has_agg a || has_agg b
             | Not e | Is_null e | Is_not_null e -> has_agg e
             | Case (branches, default) ->
               List.exists (fun (c, v) -> has_agg c || has_agg v) branches
               || Option.fold ~none:false ~some:has_agg default
             | Func (_, args) -> List.exists has_agg args
             | In_list (e, es) -> has_agg e || List.exists has_agg es
             | Col _ | Lit _ | Param _ | In_select _ | Exists _ | Not_exists _
             | Scalar_select _ ->
               false
           in
           has_agg e)
         s.projections
  in
  (* Each logical row of the rest of the pipeline is (env, group): for
     grouped queries env is a representative row and group holds the
     members; otherwise group is a singleton. *)
  let logical_rows =
    if not is_aggregate_query then List.map (fun env -> (env, [ env ])) rows
    else if s.group_by = [] then
      (* implicit single group, even when empty *)
      match rows with
      | [] -> [ ([], []) ]
      | first :: _ -> [ (first, rows) ]
    else begin
      let groups : (V.t list * binding list list ref) list ref = ref [] in
      List.iter
        (fun env ->
          let key =
            List.map (fun e -> eval { ctx with env; group = None } e) s.group_by
          in
          match
            List.find_opt (fun (k, _) -> List.for_all2 V.equal k key) !groups
          with
          | Some (_, members) -> members := env :: !members
          | None -> groups := !groups @ [ (key, ref [ env ]) ])
        rows;
      List.map
        (fun (_, members) ->
          let members = List.rev !members in
          match members with
          | [] -> assert false
          | first :: _ -> (first, members))
        !groups
    end
  in
  let logical_rows =
    match s.having with
    | None -> logical_rows
    | Some cond ->
      List.filter
        (fun (env, group) ->
          value_to_truth (eval { ctx with env; group = Some group } cond)
          = V.True)
        logical_rows
  in
  let logical_rows =
    if s.order_by = [] then logical_rows
    else
      let keyed =
        List.map
          (fun (env, group) ->
            let keys =
              List.map
                (fun o -> eval { ctx with env; group = Some group } o.sort_expr)
                s.order_by
            in
            (keys, (env, group)))
          logical_rows
      in
      let cmp (ka, _) (kb, _) =
        let rec go ks1 ks2 os =
          match (ks1, ks2, os) with
          | [], [], [] -> 0
          | k1 :: r1, k2 :: r2, o :: ro -> (
            let c =
              (* NULLs sort first ascending, mirroring common backends *)
              match (k1, k2) with
              | V.Null, V.Null -> 0
              | V.Null, _ -> -1
              | _, V.Null -> 1
              | _ -> Option.value (V.compare_sql k1 k2) ~default:0
            in
            let c = if o.descending then -c else c in
            match c with 0 -> go r1 r2 ro | c -> c)
          | _ -> 0
        in
        go ka kb s.order_by
      in
      List.map snd (List.stable_sort cmp keyed)
  in
  let projected =
    List.map
      (fun (env, group) ->
        Array.of_list
          (List.map
             (fun (e, _) -> eval { ctx with env; group = Some group } e)
             s.projections))
      logical_rows
  in
  let projected =
    if not s.distinct then projected
    else
      List.rev
        (List.fold_left
           (fun acc row ->
             if
               List.exists
                 (fun seen -> Array.for_all2 V.equal seen row)
                 acc
             then acc
             else row :: acc)
           [] projected)
  in
  let projected =
    match s.window with
    | None -> projected
    | Some { start; count } ->
      let upper =
        match count with Some n -> start + n | None -> max_int
      in
      List.filteri (fun i _ -> i + 1 >= start && i + 1 < upper) projected
  in
  { columns = List.map snd s.projections; rows = projected }

let root_context db params =
  { env = []; outer = None; group = None; params; db }

let query db ?(params = [||]) s =
  match Database.apply_fault db with
  | Error msg ->
    (* the statement reached the wire: account the roundtrip *)
    Database.record_statement db ~params:(Array.length params) ~rows:0;
    Error msg
  | Ok () -> (
    match run_select (root_context db params) s with
    | result ->
      Database.record_statement db ~params:(Array.length params)
        ~rows:(List.length result.rows);
      Ok result
    | exception Sql_error msg -> Error msg)

let execute_dml db ?(params = [||]) dml =
  match Database.apply_fault db with
  | Error msg ->
    Database.record_statement db ~params:(Array.length params) ~rows:0;
    Error msg
  | Ok () ->
  let ctx = root_context db params in
  match dml with
  | Insert { table; columns; values } -> (
    match Database.find_table db table with
    | Error msg -> Error msg
    | Ok t -> (
      match
        let provided = List.map (eval ctx) values in
        let row =
          Array.of_list
            (List.map
               (fun c ->
                 let rec find cs vs =
                   match (cs, vs) with
                   | [], _ | _, [] -> V.Null
                   | c' :: _, v :: _ when String.equal c' c.Table.col_name -> v
                   | _ :: cs, _ :: vs -> find cs vs
                 in
                 find columns provided)
               t.Table.columns)
        in
        Table.insert t row
      with
      | Ok () ->
        Database.record_statement db ~params:(Array.length params) ~rows:1;
        Ok 1
      | Error msg -> Error msg
      | exception Sql_error msg -> Error msg))
  | Update { table; assignments; where } -> (
    match Database.find_table db table with
    | Error msg -> Error msg
    | Ok t -> (
      try
        let cols =
          Array.of_list (List.map (fun c -> c.Table.col_name) t.Table.columns)
        in
        let affected = ref 0 in
        let updated =
          List.map
            (fun row ->
              let env = [ { alias = table; cols; values = row } ] in
              let selected =
                match where with
                | None -> true
                | Some cond ->
                  value_to_truth (eval { ctx with env } cond) = V.True
              in
              if not selected then row
              else begin
                incr affected;
                let row' = Array.copy row in
                List.iter
                  (fun (c, e) ->
                    match Table.column_index t c with
                    | Some i -> row'.(i) <- eval { ctx with env } e
                    | None -> error "no column %s in table %s" c table)
                  assignments;
                row'
              end)
            t.Table.rows
        in
        t.Table.rows <- updated;
        Database.record_statement db ~params:(Array.length params)
          ~rows:!affected;
        Ok !affected
      with Sql_error msg -> Error msg))
  | Delete { table; where } -> (
    match Database.find_table db table with
    | Error msg -> Error msg
    | Ok t -> (
      try
        let cols =
          Array.of_list (List.map (fun c -> c.Table.col_name) t.Table.columns)
        in
        let keep, drop =
          List.partition
            (fun row ->
              let env = [ { alias = table; cols; values = row } ] in
              match where with
              | None -> false
              | Some cond ->
                value_to_truth (eval { ctx with env } cond) <> V.True)
            t.Table.rows
        in
        t.Table.rows <- keep;
        Database.record_statement db ~params:(Array.length params)
          ~rows:(List.length drop);
        Ok (List.length drop)
      with Sql_error msg -> Error msg))
