(** Hash indexes over table rows.

    An index maps a normalized key — the tuple of a row's values at the
    indexed columns — to the ids of the rows carrying that key, in
    ascending (insertion) order. Normalization follows
    {!Sql_value.compare_sql}: all numeric types collapse to their float
    image (so [Int 1] and [Float 1.0] share a bucket), [-0.]/NaN are
    canonicalized, and strings/booleans/NULL keep their own key space.
    Because normalization can identify values the exact SQL comparison
    distinguishes (two huge ints with one float image), a probe returns
    {e candidates}: callers re-verify with the real predicate, so false
    positives are harmless and false negatives impossible.

    The module is storage-agnostic — it never touches {!Table.t} — so the
    table layer owns index registration and maintenance. *)

type t

type key
(** A normalized key tuple. *)

val create :
  ?unique:bool ->
  name:string ->
  cols:string list ->
  positions:int array ->
  unit ->
  t
(** [cols] are the indexed column names and [positions] their offsets in a
    row, in key order. [unique] is informational (primary keys). *)

val name : t -> string
val columns : t -> string list
val positions : t -> int array
val unique : t -> bool

val entries : t -> int
(** Number of (key, row id) entries currently indexed. *)

val distinct_keys : t -> int
(** Number of distinct keys with at least one live entry — the exact
    number-of-distinct-values statistic for the indexed column tuple,
    maintained incrementally (a delete that empties a bucket drops it).
    Distinct values that share a normalized key (two huge ints with one
    float image) count once, so this is an NDV {e estimate} in the same
    sense a probe is a candidate generator. *)

val numeric_range : t -> (float * float) option
(** [Some (min, max)] over the normalized numeric key values of a
    single-column numeric index; [None] for multi-column indexes,
    non-numeric keys, or an empty index. Widened incrementally on insert;
    a delete at an endpoint triggers a lazy O(distinct keys) recompute on
    the next call. NaN keys are excluded. *)

val add : t -> int -> Sql_value.t array -> unit
(** [add t id row] indexes [row] (a full table row) under its key. *)

val remove : t -> int -> Sql_value.t array -> unit
(** Removes the entry for [id]; [row] must be the indexed row value. *)

val clear : t -> unit

val probe : t -> Sql_value.t array -> int list
(** Candidate row ids whose key may SQL-equal the given values (in index
    column order), ascending. A NULL probe value matches nothing
    (three-valued equality can never be True against NULL). *)

val probe_grouping : t -> Sql_value.t array -> int list
(** Like {!probe} but with grouping equality: NULL matches NULL. Used for
    primary-key uniqueness, which treats NULL keys as comparable. *)

val key_of_values : Sql_value.t array -> key
(** Normalizes a value tuple; exposed so the executor's hash join can
    reuse the same key semantics for its build/probe tables. *)

val probe_key : t -> key -> int list

(** The hashtable functor instance over normalized keys, for hash joins. *)
module Key_tbl : Hashtbl.S with type key = key
