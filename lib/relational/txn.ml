type txn = {
  db : Database.t;
  snapshot : (string * Table.snapshot) list;
}

let begin_txn db =
  let snapshot =
    Hashtbl.fold
      (fun name table acc -> (name, Table.snapshot table) :: acc)
      db.Database.tables []
  in
  { db; snapshot }

let commit _txn = ()

let rollback txn =
  List.iter
    (fun (name, snap) ->
      match Hashtbl.find_opt txn.db.Database.tables name with
      | Some table -> Table.restore table snap
      | None -> ())
    txn.snapshot

type outcome = Committed | Rolled_back of string

let with_transaction db work =
  let txn = begin_txn db in
  match work () with
  | Ok _ as ok ->
    commit txn;
    ok
  | Error _ as err ->
    rollback txn;
    err
  | exception exn ->
    rollback txn;
    raise exn

let two_phase_commit ~participants ~work =
  let txns = List.map begin_txn participants in
  match work () with
  | Ok () ->
    (* Phase 1 (prepare) always succeeds for in-memory participants whose
       constraints were enforced during the work; phase 2 commits. *)
    List.iter commit txns;
    Committed
  | Error msg ->
    List.iter rollback txns;
    Rolled_back msg
  | exception exn ->
    List.iter rollback txns;
    raise exn
