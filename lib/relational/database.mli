(** A named in-memory database: the queryable-source substrate.

    Stands in for the Oracle/DB2/SQL Server/Sybase backends of the paper.
    Each database carries a vendor tag (driving SQL dialect generation), a
    simulated per-roundtrip latency (so distributed-join tradeoffs such as
    PP-k's block size are observable), and execution statistics (roundtrips,
    rows shipped) that the benchmarks report. *)

type vendor = Oracle | Db2 | Sql_server | Sybase | Generic_sql92

(** One scripted per-statement event of a fault schedule: proceed
    normally, stall then proceed, fail, or stall then fail. Mirrors
    {!Aldsp_services.Web_service.fault} for the queryable-source side. *)
type fault = Fault_ok | Fault_delay of float | Fault_fail | Fault_fail_after of float

type stats = {
  mutable statements : int;  (** Statements executed (= roundtrips). *)
  mutable rows_shipped : int;  (** Result rows returned to the caller. *)
  mutable params_bound : int;
  mutable full_scans : int;  (** Table accesses that read every row. *)
  mutable rows_scanned : int;  (** Rows visited by full scans. *)
  mutable index_lookups : int;  (** Index probes (one per key tuple). *)
  mutable index_rows : int;  (** Candidate rows produced by probes. *)
  mutable hash_joins : int;
  mutable index_joins : int;  (** Index nested-loop joins. *)
  mutable nl_joins : int;  (** Plain nested-loop joins. *)
  mutable coalesced_hits : int;
      (** Statements served from another session's byte-identical
          in-flight statement (single-flight coalescing) — no roundtrip
          of their own. *)
  mutable batch_merges : int;
      (** Single-key probes merged into another session's accumulated
          IN-list roundtrip (batched dispatch) — beyond the leader. *)
  mutable dedup_roundtrips_saved : int;
      (** Roundtrips avoided by work sharing: the sum of statements that
          would have hit the wire without coalescing + batching. *)
}

type t = {
  db_uid : int;
      (** Process-unique id: keys this database in the executor's
          work-sharing registries (names recur across fuzz catalogs). *)
  db_name : string;
  vendor : vendor;
  tables : (string, Table.t) Hashtbl.t;
  stats : stats;
  stats_lock : Mutex.t;
      (** Guards counter increments (use {!record_operator}); plain field
          reads need no lock. *)
  mutable roundtrip_latency : float;
      (** Simulated seconds of network+parse cost per statement; applied
          with a cancellation-aware sleep when positive, so session
          deadlines abort mid-roundtrip. *)
  mutable schedule : fault list;
      (** Scripted per-statement behaviour; statement [n] consumes entry
          [n]. Use {!set_schedule}; consumption is thread-safe. *)
  schedule_lock : Mutex.t;
  mutable use_indexes : bool;
      (** Backend access-path switch, independent of the middleware
          optimizer: when false the executor only uses scans and nested
          loops (the differential oracle's reference mode). Indexes are
          maintained either way. Default [true]. *)
  mutable share_work : bool;
      (** Cross-session work sharing (single-flight statement coalescing
          and batched single-key dispatch) in the executor. Off by
          default: sharing changes statement accounting and interleaves
          sessions, so it is opt-in for serving workloads (the
          differential oracle runs a dedicated sharing pass). Disabled
          internally while a fault schedule is active — scripted events
          must align with statements one-to-one. *)
  mutable batch_window : float;
      (** Current adaptive accumulation window (seconds) for batched
          dispatch: grown when batches merge probes, shrunk towards the
          floor when a window closes solo. Maintained by the executor. *)
  mutable last_plan : string list;
      (** EXPLAIN-style access-path decisions of the most recent
          statement, recorded by the executor. *)
}

val create : ?vendor:vendor -> ?roundtrip_latency:float -> string -> t

val zero_stats : unit -> stats

val add_stats : stats -> stats -> unit
(** [add_stats acc s] accumulates [s] into [acc]; used to roll per-source
    counters up into {!Aldsp_core.Server.stats}-level totals. *)

val set_use_indexes : t -> bool -> unit

val set_share_work : t -> bool -> unit
(** Flips cross-session work sharing for statements on this database. *)

val set_last_plan : t -> string list -> unit

val explain_last : t -> string
(** The recorded access-path decisions of the last statement, one line
    per operator, rendered for humans. *)

val add_table : t -> Table.t -> unit
val find_table : t -> string -> (Table.t, string) result
val table_names : t -> string list

val vendor_name : vendor -> string

val reset_stats : t -> unit

val set_schedule : t -> fault list -> unit
(** Installs a scripted per-statement fault schedule: the [n]-th subsequent
    statement consumes the [n]-th entry; an exhausted script reverts to
    normal execution. Lets the differential harness test fail-over and
    timeout around the relational adaptor deterministically (§5.4-5.6). *)

val schedule_remaining : t -> int
(** Entries of the current schedule not yet consumed. *)

val apply_fault : t -> (unit, string) result
(** Consumes and applies the next scripted event: sleeps any scripted
    stall, then returns [Error] for a scripted transport failure. Called
    by the executor at the start of every statement. *)

val record_statement : t -> params:int -> rows:int -> unit
(** Accounts one roundtrip and applies the simulated latency. Used by the
    executor; exposed so functional-source simulators can share the
    accounting. Thread-safe; the latency sleep is cancellation-aware and
    happens outside the stats lock so concurrent roundtrips overlap. *)

val open_statement : t -> params:int -> unit
(** Cursor-style accounting, first half: one statement roundtrip with its
    bound params and simulated latency, before any row ships. Pair with
    {!ship_rows} per fetched chunk; a fully drained cursor totals exactly
    one {!record_statement} call. *)

val ship_rows : t -> int -> unit
(** Cursor-style accounting, second half: adds one fetched chunk's rows
    to [rows_shipped]. Chunks are engine-side iteration, not extra
    roundtrips. *)

val record_operator : t -> (stats -> unit) -> unit
(** Runs the counter update under [stats_lock]: the executor's per-operator
    increments are read-modify-write and concurrent sessions share one
    [stats] record. *)

(** {2 Planner statistics} *)

val stats_version : t -> int
(** Sum of {!Table.version} over every table: changes whenever any row of
    this database is inserted, updated, deleted or rolled back. Folded
    into {!Aldsp_core.Metadata.stats_generation} to invalidate cached
    cost-based plans. *)

val table_statistics : t -> (string * Table.statistics) list
(** [(table, statistics)] pairs in table-name order. *)

val cost_profile : t -> float * float
(** The declared [(roundtrip_latency, per_row_cost)] profile in seconds:
    what one statement roundtrip and one shipped row cost the middleware.
    The cost model prices plans with these. *)
