type sql_type = T_int | T_varchar | T_decimal | T_boolean | T_timestamp

type column = { col_name : string; col_type : sql_type; nullable : bool }

type foreign_key = {
  fk_columns : string list;
  references_table : string;
  references_columns : string list;
}

(* Row storage is a growable array of slots; a row's slot number is its
   stable id (insertion order), referenced by index entries. Deleted rows
   leave a dead slot behind — scans skip them via [live] — so surviving
   ids never shift. *)
type t = {
  table_name : string;
  columns : column list;
  primary_key : string list;
  foreign_keys : foreign_key list;
  lock : Mutex.t;
      (* one lock per table, guarding storage, the live bitmap, the
         indexes and the incremental statistics: concurrent sessions run
         DML and index probes against the same tables. Not reentrant —
         public entry points lock exactly once and compose the unlocked
         internals below. *)
  mutable store : Sql_value.t array array;
  mutable size : int;  (* slots allocated so far; next fresh row id *)
  mutable live : Bytes.t;  (* '\001' live, '\000' dead, per slot *)
  mutable live_count : int;
  mutable indexes : Index.t list;
  mutable pk_index : Index.t option;  (* member of [indexes] *)
  mutable version : int;  (* bumped on every row mutation *)
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect f ~finally:(fun () -> Mutex.unlock t.lock)

let column ?(nullable = true) col_name col_type = { col_name; col_type; nullable }

let column_index t name =
  let rec go i = function
    | [] -> None
    | c :: _ when String.equal c.col_name name -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 t.columns

let column_type t name =
  List.find_map
    (fun c -> if String.equal c.col_name name then Some c.col_type else None)
    t.columns

let resolve_positions t cols =
  let rec go acc = function
    | [] -> Some (Array.of_list (List.rev acc))
    | c :: rest -> (
      match column_index t c with
      | Some i -> go (i :: acc) rest
      | None -> None)
  in
  if cols = [] then None else go [] cols

(* [indexes]/[pk_index] read one immutable list/option value: registration
   replaces the field wholesale, so unlocked readers see the old or the
   new list, never a torn one. Probing an index's contents concurrently
   with DML does need the lock — see [probe_index]. *)
let indexes t = t.indexes
let pk_index t = t.pk_index

let find_index t cols =
  let sorted = List.sort String.compare cols in
  List.find_opt
    (fun idx -> List.sort String.compare (Index.columns idx) = sorted)
    t.indexes

(* Builds and registers an index over the current rows; [None] when some
   key column is not in the schema (legacy schemas may declare keys over
   absent columns — those fall back to scans, as before). *)
let register_index t ?(unique = false) ~name cols =
  match resolve_positions t cols with
  | None -> None
  | Some positions ->
    let idx = Index.create ~unique ~name ~cols ~positions () in
    for id = 0 to t.size - 1 do
      if Bytes.get t.live id = '\001' then Index.add idx id t.store.(id)
    done;
    t.indexes <- t.indexes @ [ idx ];
    Some idx

let create_index t ~name cols =
  with_lock t @@ fun () ->
  if List.exists (fun idx -> String.equal (Index.name idx) name) t.indexes
  then Error (Printf.sprintf "table %s: index %s already exists" t.table_name name)
  else
    match register_index t ~name cols with
    | Some _ -> Ok ()
    | None ->
      Error
        (Printf.sprintf "table %s: index %s names an unknown column"
           t.table_name name)

let create ?(primary_key = []) ?(foreign_keys = []) table_name columns =
  let t =
    { table_name;
      columns;
      primary_key;
      foreign_keys;
      lock = Mutex.create ();
      store = [||];
      size = 0;
      live = Bytes.empty;
      live_count = 0;
      indexes = [];
      pk_index = None;
      version = 0 }
  in
  if primary_key <> [] then
    t.pk_index <- register_index t ~unique:true ~name:("pk_" ^ table_name)
        primary_key;
  List.iter
    (fun fk ->
      if find_index t fk.fk_columns = None then
        ignore
          (register_index t
             ~name:
               (Printf.sprintf "fk_%s_%s" table_name
                  (String.concat "_" fk.fk_columns))
             fk.fk_columns))
    foreign_keys;
  t

let type_check ty v =
  match (ty, v) with
  | _, Sql_value.Null -> true
  | T_int, Sql_value.Int _ -> true
  | T_varchar, Sql_value.Str _ -> true
  | T_decimal, (Sql_value.Int _ | Sql_value.Float _) -> true
  | T_boolean, Sql_value.Bool _ -> true
  | T_timestamp, (Sql_value.Timestamp _ | Sql_value.Int _) -> true
  | _ -> false

let key_of_row t row =
  List.map
    (fun k ->
      match column_index t k with
      | Some i -> row.(i)
      | None -> Sql_value.Null)
    t.primary_key

(* ------------------------------------------------------------------ *)
(* Row access *)

let is_live_u t id = id >= 0 && id < t.size && Bytes.get t.live id = '\001'

let iter_rows_u t f =
  for id = 0 to t.size - 1 do
    if Bytes.get t.live id = '\001' then f id t.store.(id)
  done

let is_live t id = with_lock t @@ fun () -> is_live_u t id

let get_row t id =
  with_lock t @@ fun () -> if is_live_u t id then Some t.store.(id) else None

(* The public iteration collects the live rows under the lock and runs
   the callback outside it: callbacks evaluate arbitrary expressions
   (UPDATE/DELETE selection may read this same table), which must not
   re-enter the non-reentrant lock. Callers therefore iterate a
   consistent snapshot; row arrays are never mutated in place, so
   sharing them is safe. *)
let iter_rows t f =
  let rows =
    with_lock t (fun () ->
        let acc = ref [] in
        iter_rows_u t (fun id row -> acc := (id, row) :: !acc);
        List.rev !acc)
  in
  List.iter (fun (id, row) -> f id row) rows

let all_rows t =
  with_lock t @@ fun () ->
  let acc = ref [] in
  iter_rows_u t (fun _ row -> acc := row :: !acc);
  List.rev !acc

(* a single word-sized field: torn reads are impossible, so the planner
   can read row counts without taking the lock *)
let row_count t = t.live_count

let probe_index t idx values = with_lock t @@ fun () -> Index.probe idx values

(* ------------------------------------------------------------------ *)
(* Mutation *)

let ensure_capacity t =
  if t.size >= Array.length t.store then begin
    let cap = max 8 (2 * Array.length t.store) in
    let store = Array.make cap [||] in
    Array.blit t.store 0 store 0 t.size;
    let live = Bytes.make cap '\000' in
    Bytes.blit t.live 0 live 0 t.size;
    t.store <- store;
    t.live <- live
  end

let append_unchecked t row =
  ensure_capacity t;
  let id = t.size in
  t.store.(id) <- row;
  Bytes.set t.live id '\001';
  t.size <- t.size + 1;
  t.live_count <- t.live_count + 1;
  t.version <- t.version + 1;
  List.iter (fun idx -> Index.add idx id row) t.indexes;
  id

let pk_duplicate t key =
  match t.pk_index with
  | Some idx ->
    (* grouping probe: primary-key uniqueness treats NULL keys as equal,
       matching [Sql_value.equal]; candidates are re-verified exactly *)
    List.exists
      (fun id -> List.for_all2 Sql_value.equal key (key_of_row t t.store.(id)))
      (Index.probe_grouping idx (Array.of_list key))
  | None ->
    (* the declared key names a column the schema lacks: scan, as before *)
    let dup = ref false in
    iter_rows t (fun _ row ->
        if
          (not !dup)
          && List.for_all2 Sql_value.equal key (key_of_row t row)
        then dup := true);
    !dup

let validate t row =
  if Array.length row <> List.length t.columns then
    Error
      (Printf.sprintf "table %s: row has %d values, expected %d" t.table_name
         (Array.length row) (List.length t.columns))
  else
    let violations =
      List.filteri
        (fun i c ->
          (Sql_value.is_null row.(i) && not c.nullable)
          || not (type_check c.col_type row.(i)))
        t.columns
    in
    match violations with
    | c :: _ ->
      Error
        (Printf.sprintf "table %s: constraint violation on column %s"
           t.table_name c.col_name)
    | [] ->
      if t.primary_key <> [] && pk_duplicate t (key_of_row t row) then
        Error (Printf.sprintf "table %s: duplicate primary key" t.table_name)
      else Ok ()

let insert_u t row =
  match validate t row with
  | Error _ as e -> e
  | Ok () ->
    ignore (append_unchecked t row);
    Ok ()

let insert t row = with_lock t @@ fun () -> insert_u t row

let delete_row_u t id =
  if is_live_u t id then begin
    let row = t.store.(id) in
    List.iter (fun idx -> Index.remove idx id row) t.indexes;
    Bytes.set t.live id '\000';
    t.store.(id) <- [||];
    t.live_count <- t.live_count - 1;
    t.version <- t.version + 1
  end

let delete_row t id = with_lock t @@ fun () -> delete_row_u t id

(* one critical section for the whole batch, so all-or-nothing holds even
   against concurrent writers: no other session can observe (or collide
   with) a half-applied batch *)
let insert_many t rows =
  with_lock t @@ fun () ->
  let inserted = ref [] in
  let rec go n = function
    | [] -> Ok n
    | row :: rest -> (
      match insert_u t row with
      | Ok () ->
        inserted := (t.size - 1) :: !inserted;
        go (n + 1) rest
      | Error _ as e ->
        (* all-or-nothing: unwind the rows this call appended *)
        List.iter (delete_row_u t) !inserted;
        e)
  in
  go 0 rows

(* The executor validated nothing on UPDATE historically; [update_row]
   keeps that contract and only maintains the indexes. *)
let update_row t id row =
  with_lock t @@ fun () ->
  if is_live_u t id then begin
    let old = t.store.(id) in
    List.iter
      (fun idx ->
        Index.remove idx id old;
        Index.add idx id row)
      t.indexes;
    t.store.(id) <- row;
    t.version <- t.version + 1
  end

(* ------------------------------------------------------------------ *)
(* Snapshots (transactions) *)

type snapshot = {
  snap_store : Sql_value.t array array;
  snap_size : int;
  snap_live : Bytes.t;
  snap_live_count : int;
}

(* Shallow: row arrays are never mutated in place (UPDATE replaces the
   slot with a fresh array), so sharing them with the snapshot is safe. *)
let snapshot t =
  with_lock t @@ fun () ->
  { snap_store = Array.sub t.store 0 t.size;
    snap_size = t.size;
    snap_live = Bytes.sub t.live 0 t.size;
    snap_live_count = t.live_count }

let restore t snap =
  with_lock t @@ fun () ->
  let cap = max (Array.length t.store) snap.snap_size in
  let store = Array.make cap [||] in
  Array.blit snap.snap_store 0 store 0 snap.snap_size;
  let live = Bytes.make cap '\000' in
  Bytes.blit snap.snap_live 0 live 0 snap.snap_size;
  t.store <- store;
  t.live <- live;
  t.size <- snap.snap_size;
  t.live_count <- snap.snap_live_count;
  t.version <- t.version + 1;
  List.iter Index.clear t.indexes;
  iter_rows_u t (fun id row ->
      List.iter (fun idx -> Index.add idx id row) t.indexes)

(* ------------------------------------------------------------------ *)
(* Statistics *)

let version t = t.version

type column_stats = {
  cs_columns : string list;
  cs_distinct : int;
  cs_min : float option;
  cs_max : float option;
  cs_unique : bool;
}

type statistics = {
  stat_rows : int;
  stat_version : int;
  stat_columns : column_stats list;
}

(* One entry per index: row counts are exact, NDV comes from the live
   bucket count, and min/max is tracked for single-column numeric keys.
   Everything here is maintained incrementally by the mutation paths
   above, so reading statistics costs nothing beyond a possible lazy
   range recompute after endpoint deletes. *)
let statistics t =
  with_lock t @@ fun () ->
  { stat_rows = t.live_count;
    stat_version = t.version;
    stat_columns =
      List.map
        (fun idx ->
          let rng = Index.numeric_range idx in
          { cs_columns = Index.columns idx;
            cs_distinct = Index.distinct_keys idx;
            cs_min = Option.map fst rng;
            cs_max = Option.map snd rng;
            cs_unique = Index.unique idx })
        t.indexes }

(* NDV for a single column when some index leads with it: an index keyed
   exactly on [col] gives the exact live distinct count; a compound index
   leading with [col] gives a lower bound on the tuple NDV which is an
   upper bound for neither, so only exact matches are reported. *)
let distinct_estimate t col =
  with_lock t @@ fun () ->
  List.find_map
    (fun idx ->
      match Index.columns idx with
      | [ c ] when String.equal c col -> Some (Index.distinct_keys idx)
      | _ -> None)
    t.indexes

let atomic_type_of_sql = function
  | T_int -> Aldsp_xml.Atomic.T_integer
  | T_varchar -> Aldsp_xml.Atomic.T_string
  | T_decimal -> Aldsp_xml.Atomic.T_decimal
  | T_boolean -> Aldsp_xml.Atomic.T_boolean
  | T_timestamp -> Aldsp_xml.Atomic.T_date_time
