(** Table schemas and row storage.

    Rows are value arrays positionally aligned with the column list, held
    in a growable array: appends are O(1) amortized and every row has a
    stable integer id (its insertion position) that indexes refer to.
    Deletion tombstones the slot, so ids never shift. Primary and foreign
    keys are part of the schema; ALDSP's introspector reads them to
    generate read and navigation functions (§2.1), and the table
    auto-builds a hash index on each (plus any {!create_index}
    registrations), maintained incrementally across insert, update, delete
    and snapshot restore. *)

type sql_type = T_int | T_varchar | T_decimal | T_boolean | T_timestamp

type column = { col_name : string; col_type : sql_type; nullable : bool }

type foreign_key = {
  fk_columns : string list;
  references_table : string;
  references_columns : string list;
}

type t = private {
  table_name : string;
  columns : column list;
  primary_key : string list;
  foreign_keys : foreign_key list;
  lock : Mutex.t;
      (** Guards storage, indexes and statistics; every function below
          takes it, so tables are safe under concurrent sessions
          (including concurrent DML). *)
  mutable store : Sql_value.t array array;
      (** Slots by row id; managed via the functions below. *)
  mutable size : int;
  mutable live : Bytes.t;
  mutable live_count : int;
  mutable indexes : Index.t list;
  mutable pk_index : Index.t option;
  mutable version : int;
}

val create :
  ?primary_key:string list ->
  ?foreign_keys:foreign_key list ->
  string ->
  column list ->
  t
(** Builds the table and its automatic indexes: a unique [pk_<table>]
    index when a primary key is declared (and resolvable against the
    columns) and one [fk_<table>_<cols>] index per foreign key. *)

val column : ?nullable:bool -> string -> sql_type -> column

val column_index : t -> string -> int option
val column_type : t -> string -> sql_type option

val create_index : t -> name:string -> string list -> (unit, string) result
(** CREATE INDEX-style explicit registration: builds a hash index over the
    given columns, populated from the current rows and maintained from
    then on. Errors on a duplicate name or unknown column. *)

val indexes : t -> Index.t list
val pk_index : t -> Index.t option

val find_index : t -> string list -> Index.t option
(** An index whose key columns are exactly the given set (order
    insensitive), if one is registered. *)

val insert : t -> Sql_value.t array -> (unit, string) result
(** Validates arity, NOT NULL constraints, basic type conformance and
    primary-key uniqueness (an O(1) probe of the PK index), then appends
    the row. *)

val insert_many : t -> Sql_value.t array list -> (int, string) result
(** Bulk insert with the same per-row validation, O(1) amortized per row.
    All-or-nothing: on the first failure the rows already appended by this
    call are removed and the error returned. [Ok n] is the number
    inserted. *)

val all_rows : t -> Sql_value.t array list
(** Rows in insertion order. *)

val row_count : t -> int

val iter_rows : t -> (int -> Sql_value.t array -> unit) -> unit
(** Live rows in insertion order, with their ids. The callback runs
    outside the table lock, over the set of rows live when iteration
    began: it may itself query (or mutate) this table, and concurrent
    mutations do not affect the iteration. *)

val get_row : t -> int -> Sql_value.t array option
(** The row at this id, if live. *)

val is_live : t -> int -> bool

val probe_index : t -> Index.t -> Sql_value.t array -> int list
(** {!Index.probe} under the table lock: the executor's probe paths race
    with DML maintaining the same index buckets, and an unlocked hash
    read during a concurrent resize is unsafe. *)

val update_row : t -> int -> Sql_value.t array -> unit
(** Replaces the row at [id] (no constraint validation, matching the
    executor's historical UPDATE semantics) and fixes the indexes. The new
    array must not be mutated afterwards. *)

val delete_row : t -> int -> unit
(** Tombstones the slot and unindexes the row; a no-op on dead ids. *)

val type_check : sql_type -> Sql_value.t -> bool

(** {2 Snapshots}

    O(live rows) shallow copies used by {!Txn} for rollback; restore
    rebuilds the indexes. *)

type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit

(** {2 Statistics}

    Per-table statistics for the cost-based planner, maintained
    incrementally by every mutation path (insert, update, delete, bulk
    insert unwind, snapshot restore). *)

val version : t -> int
(** A counter bumped on every row mutation; the planner keys cached cost
    decisions on it (summed across tables into a stats generation). *)

type column_stats = {
  cs_columns : string list;  (** Key columns of the backing index. *)
  cs_distinct : int;  (** Live distinct keys ({!Index.distinct_keys}). *)
  cs_min : float option;  (** Numeric minimum (single-column numeric keys). *)
  cs_max : float option;
  cs_unique : bool;
}

type statistics = {
  stat_rows : int;  (** Exact live row count. *)
  stat_version : int;  (** {!version} at the time of the snapshot. *)
  stat_columns : column_stats list;  (** One entry per registered index. *)
}

val statistics : t -> statistics

val distinct_estimate : t -> string -> int option
(** Exact live NDV for a column, when a single-column index (primary key,
    foreign key or {!create_index}) covers it. *)

val atomic_type_of_sql : sql_type -> Aldsp_xml.Atomic.atomic_type
(** The SQL-to-XML type mapping used when introspection builds the XML
    shape of a table (§4.4). *)
