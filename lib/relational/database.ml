type vendor = Oracle | Db2 | Sql_server | Sybase | Generic_sql92

type fault = Fault_ok | Fault_delay of float | Fault_fail | Fault_fail_after of float

type stats = {
  mutable statements : int;
  mutable rows_shipped : int;
  mutable params_bound : int;
  (* operator-level execution counters *)
  mutable full_scans : int;
  mutable rows_scanned : int;
  mutable index_lookups : int;
  mutable index_rows : int;
  mutable hash_joins : int;
  mutable index_joins : int;
  mutable nl_joins : int;
  (* cross-session work-sharing counters *)
  mutable coalesced_hits : int;
  mutable batch_merges : int;
  mutable dedup_roundtrips_saved : int;
}

type t = {
  db_uid : int;
  db_name : string;
  vendor : vendor;
  tables : (string, Table.t) Hashtbl.t;
  stats : stats;
  stats_lock : Mutex.t;
  mutable roundtrip_latency : float;
  mutable schedule : fault list;
  schedule_lock : Mutex.t;
  mutable use_indexes : bool;
  mutable share_work : bool;
  mutable batch_window : float;
  mutable last_plan : string list;
}

let zero_stats () =
  { statements = 0;
    rows_shipped = 0;
    params_bound = 0;
    full_scans = 0;
    rows_scanned = 0;
    index_lookups = 0;
    index_rows = 0;
    hash_joins = 0;
    index_joins = 0;
    nl_joins = 0;
    coalesced_hits = 0;
    batch_merges = 0;
    dedup_roundtrips_saved = 0 }

(* Distinguishes databases with recurring names (fuzz catalogs) in the
   executor's process-wide work-sharing registries. *)
let next_uid =
  let counter = ref 0 in
  let lock = Mutex.create () in
  fun () ->
    Mutex.lock lock;
    incr counter;
    let uid = !counter in
    Mutex.unlock lock;
    uid

let create ?(vendor = Generic_sql92) ?(roundtrip_latency = 0.) db_name =
  { db_uid = next_uid ();
    db_name;
    vendor;
    tables = Hashtbl.create 16;
    stats = zero_stats ();
    stats_lock = Mutex.create ();
    roundtrip_latency;
    schedule = [];
    schedule_lock = Mutex.create ();
    use_indexes = true;
    share_work = false;
    (* accumulation window start: a quarter roundtrip (adapted at run
       time between 50 µs and half the roundtrip, see Sql_exec) *)
    batch_window = roundtrip_latency /. 4.;
    last_plan = [] }

let add_stats acc s =
  acc.statements <- acc.statements + s.statements;
  acc.rows_shipped <- acc.rows_shipped + s.rows_shipped;
  acc.params_bound <- acc.params_bound + s.params_bound;
  acc.full_scans <- acc.full_scans + s.full_scans;
  acc.rows_scanned <- acc.rows_scanned + s.rows_scanned;
  acc.index_lookups <- acc.index_lookups + s.index_lookups;
  acc.index_rows <- acc.index_rows + s.index_rows;
  acc.hash_joins <- acc.hash_joins + s.hash_joins;
  acc.index_joins <- acc.index_joins + s.index_joins;
  acc.nl_joins <- acc.nl_joins + s.nl_joins;
  acc.coalesced_hits <- acc.coalesced_hits + s.coalesced_hits;
  acc.batch_merges <- acc.batch_merges + s.batch_merges;
  acc.dedup_roundtrips_saved <-
    acc.dedup_roundtrips_saved + s.dedup_roundtrips_saved

let add_table t table = Hashtbl.replace t.tables table.Table.table_name table

let find_table t name =
  match Hashtbl.find_opt t.tables name with
  | Some table -> Ok table
  | None -> Error (Printf.sprintf "database %s: no table %s" t.db_name name)

let table_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.tables []
  |> List.sort String.compare

let vendor_name = function
  | Oracle -> "Oracle"
  | Db2 -> "DB2"
  | Sql_server -> "SQL Server"
  | Sybase -> "Sybase"
  | Generic_sql92 -> "SQL92"

(* Counter mutations from concurrent sessions go through [stats_lock]:
   increments are read-modify-write and would lose updates under
   preemption. Reads stay unlocked — fields are word-sized and the
   consumers (stats reports) tolerate an in-flight statement. *)
let record_operator t f =
  Mutex.lock t.stats_lock;
  f t.stats;
  Mutex.unlock t.stats_lock

let reset_stats t =
  record_operator t @@ fun _ ->
  t.stats.statements <- 0;
  t.stats.rows_shipped <- 0;
  t.stats.params_bound <- 0;
  t.stats.full_scans <- 0;
  t.stats.rows_scanned <- 0;
  t.stats.index_lookups <- 0;
  t.stats.index_rows <- 0;
  t.stats.hash_joins <- 0;
  t.stats.index_joins <- 0;
  t.stats.nl_joins <- 0;
  t.stats.coalesced_hits <- 0;
  t.stats.batch_merges <- 0;
  t.stats.dedup_roundtrips_saved <- 0

let set_use_indexes t flag = t.use_indexes <- flag

let set_share_work t flag = t.share_work <- flag

let set_last_plan t plan = t.last_plan <- plan

let explain_last t =
  match t.last_plan with
  | [] -> Printf.sprintf "-- %s: no statement executed" t.db_name
  | lines -> String.concat "\n" lines

let set_schedule t faults =
  Mutex.lock t.schedule_lock;
  t.schedule <- faults;
  Mutex.unlock t.schedule_lock

let schedule_remaining t =
  Mutex.lock t.schedule_lock;
  let n = List.length t.schedule in
  Mutex.unlock t.schedule_lock;
  n

let take_fault t =
  Mutex.lock t.schedule_lock;
  let f =
    match t.schedule with
    | [] -> None
    | f :: rest ->
      t.schedule <- rest;
      Some f
  in
  Mutex.unlock t.schedule_lock;
  f

(* Applies the next scripted event of the schedule to this statement:
   [Ok ()] to proceed (after any scripted stall), [Error _] for a scripted
   transport failure. With PP-k prefetch, statements execute on pool
   workers, so consumption is mutex-guarded. *)
let apply_fault t =
  match take_fault t with
  | None | Some Fault_ok -> Ok ()
  | Some (Fault_delay d) ->
    if d > 0. then Aldsp_concurrency.Cancel.sleepf d;
    Ok ()
  | Some Fault_fail ->
    Error (Printf.sprintf "database %s: scripted transport failure" t.db_name)
  | Some (Fault_fail_after d) ->
    if d > 0. then Aldsp_concurrency.Cancel.sleepf d;
    Error (Printf.sprintf "database %s: scripted transport failure" t.db_name)

(* ------------------------------------------------------------------ *)
(* Statistics for the cost-based planner *)

(* Sum of per-table mutation counters: order-independent, so iterating the
   hashtable directly is deterministic. The planner keys cached plans on
   this so no cost decision survives a row mutation. *)
let stats_version t =
  Hashtbl.fold (fun _ table acc -> acc + Table.version table) t.tables 0

let table_statistics t =
  List.filter_map
    (fun name ->
      match find_table t name with
      | Ok table -> Some (name, Table.statistics table)
      | Error _ -> None)
    (table_names t)

(* The declared cost profile of this source: seconds per statement
   roundtrip and per shipped row. The per-row cost matches the observed
   middleware materialization cost on this workload (~2 µs/row); vendors
   do not differ here, latency does. *)
let cost_profile t = (t.roundtrip_latency, 2e-6)

(* The latency sleep happens outside the stats lock (other sessions'
   roundtrips overlap it) and through the cancellation-aware sleep, so a
   session deadline aborts a statement mid-"network wait". *)
let record_statement t ~params ~rows =
  record_operator t (fun stats ->
      stats.statements <- stats.statements + 1;
      stats.params_bound <- stats.params_bound + params;
      stats.rows_shipped <- stats.rows_shipped + rows);
  if t.roundtrip_latency > 0. then
    Aldsp_concurrency.Cancel.sleepf t.roundtrip_latency

(* Cursor-style accounting: one roundtrip (and one latency payment) when
   the statement opens, rows added chunk by chunk as they ship. Success
   paths total exactly what a single [record_statement ~rows] reports. *)
let open_statement t ~params = record_statement t ~params ~rows:0

let ship_rows t n =
  if n > 0 then
    record_operator t (fun stats ->
        stats.rows_shipped <- stats.rows_shipped + n)
