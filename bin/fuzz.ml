(* fuzz — long-running differential fuzzer for the query processor.

   Generates seeded random catalogs (all five SQL dialects), queries and
   runtime configurations, compares the optimized pipeline byte-for-byte
   against the reference configuration (no rewrites, no pushdown, one
   worker, sequential lets), interleaves scripted fault-schedule
   scenarios, and round-trips every pushed SQL statement through the
   parser. Failures are shrunk to minimal counterexamples and written
   out with their reproduction seed.

   Fully deterministic for a given --seed. Exit status: 0 all scenarios
   passed, 1 a counterexample was found (and written), 2 usage error. *)

open Cmdliner
open Aldsp_check

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

let seed_arg =
  let doc = "Random seed; the whole run is a pure function of it." in
  Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"N" ~doc)

let count_arg =
  let doc = "Number of query/config scenarios to run." in
  Arg.(value & opt int 500 & info [ "n"; "count" ] ~docv:"N" ~doc)

let out_arg =
  let doc =
    "Directory for counterexample files (created if missing); also the \
     corpus format used by test/corpus."
  in
  Arg.(value & opt string "fuzz-out" & info [ "o"; "out" ] ~docv:"DIR" ~doc)

let mutate_arg =
  let doc =
    "Self-test: plant the dropped-Where rewrite bug into the subject \
     pipeline; the run $(b,must) find and shrink a counterexample, so the \
     exit status is inverted (0 = bug caught)."
  in
  Arg.(value & flag & info [ "mutate" ] ~doc)

let no_faults_arg =
  let doc = "Skip the interleaved fault-schedule scenarios." in
  Arg.(value & flag & info [ "no-faults" ] ~doc)

let no_roundtrip_arg =
  let doc = "Skip SQL round-trip checking of generated queries." in
  Arg.(value & flag & info [ "no-sql-roundtrip" ] ~doc)

let sessions_arg =
  let doc =
    "Concurrent oracle mode: replay each scenario's query corpus with \
     $(docv) session threads against one shared server through the \
     admission-controlled serving layer, byte-comparing every answer \
     against the serial reference. 0 (default) runs the serial oracle."
  in
  Arg.(value & opt int 0 & info [ "concurrent-sessions" ] ~docv:"N" ~doc)

let kind_name = function
  | Harness.K_oracle -> "oracle"
  | Harness.K_fault -> "fault"
  | Harness.K_mutation -> "mutation"
  | Harness.K_concurrent -> "concurrent"

let report_cx out cx =
  let text = Harness.cx_to_string cx in
  (try if not (Sys.is_directory out) then failwith "not a directory"
   with Sys_error _ -> Unix.mkdir out 0o755);
  let path =
    Filename.concat out
      (Printf.sprintf "cx-%s-seed%d-i%d.txt" (kind_name cx.Harness.cx_kind)
         cx.Harness.cx_seed cx.Harness.cx_index)
  in
  write_file path text;
  Printf.eprintf
    "counterexample (%s, shrunk with %d re-checks) written to %s:\n%s\n"
    (kind_name cx.Harness.cx_kind) cx.Harness.cx_shrink_checks path text

(* SQL round-trip sweep over the same deterministic scenario stream the
   oracle ran: every pushed region must re-parse and re-execute. *)
let roundtrip_sweep ~seed ~count =
  let failure = ref None in
  let regions = ref 0 in
  let index = ref 0 in
  while !index < count && !failure = None do
    let s = Harness.scenario_of ~seed ~index:!index in
    let cat = Catalog.build s.Shrink.spec in
    let server = Oracle.subject_server cat s.Shrink.config in
    (match Sql_roundtrip.check_query server (Gen.render s.Shrink.query) with
    | Ok n -> regions := !regions + n
    | Error e ->
      failure :=
        Some
          (Printf.sprintf "sql round-trip failed at seed %d index %d:\n%s"
             seed !index e));
    incr index
  done;
  match !failure with None -> Ok !regions | Some e -> Error e

let fuzz seed count out mutate no_faults no_roundtrip sessions =
  let log msg = Printf.printf "%s\n%!" msg in
  let finish code =
    Oracle.shutdown_pools ();
    code
  in
  if sessions > 0 then begin
    log
      (Printf.sprintf "concurrent oracle: %d sessions per scenario" sessions);
    match Harness.run_concurrent ~sessions ~log ~seed ~count () with
    | Ok n ->
      log
        (Printf.sprintf "%d scenarios passed the concurrent oracle comparison"
           n);
      finish 0
    | Error cx ->
      report_cx out cx;
      finish 1
  end
  else if mutate then begin
    log "mutation self-test: planting a dropped-Where bug...";
    match Harness.run ~mutate:true ~with_faults:false ~log ~seed ~count () with
    | Ok n ->
      Printf.eprintf
        "MUTATION NOT CAUGHT: %d scenarios passed with a planted bug\n" n;
      finish 1
    | Error cx ->
      report_cx out cx;
      log "mutation caught and shrunk — harness is alive";
      finish 0
  end
  else
    match
      Harness.run ~with_faults:(not no_faults) ~log ~seed ~count ()
    with
    | Error cx ->
      report_cx out cx;
      finish 1
    | Ok n -> (
      log (Printf.sprintf "%d scenarios passed the oracle comparison" n);
      if no_roundtrip then finish 0
      else
        match roundtrip_sweep ~seed ~count with
        | Ok regions ->
          log
            (Printf.sprintf "%d pushed SQL regions round-tripped" regions);
          finish 0
        | Error e ->
          prerr_endline e;
          finish 1)

let () =
  let doc = "differential fuzzer for the query processor" in
  let info = Cmd.info "fuzz" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.v info
          Term.(
            const fuzz $ seed_arg $ count_arg $ out_arg $ mutate_arg
            $ no_faults_arg $ no_roundtrip_arg $ sessions_arg)))
