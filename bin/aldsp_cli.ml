(* aldsp — a command-line console for the data services platform.

   Subcommands:
     run      compile and run an XQuery against the demo enterprise
     explain  show the compiled plan and the SQL pushed to each source
     check    design-time check of a data service file (error recovery)
     catalog  list data services, functions and sources
     stats    run a query and report per-source roundtrips/rows *)

open Cmdliner
open Aldsp_core

let make_demo ?(db_latency = 0.) ?sort_budget customers =
  let optimizer_options =
    match sort_budget with
    | None -> None
    | Some n ->
      Some
        { Optimizer.default_options with Optimizer.sort_budget_rows = Some n }
  in
  Aldsp_demo.Demo.create ~customers ~orders_per_customer:3 ~db_latency
    ?optimizer_options ()

let customers_arg =
  let doc = "Number of customers in the demo enterprise." in
  Arg.(value & opt int 20 & info [ "c"; "customers" ] ~docv:"N" ~doc)

let sort_budget_arg =
  let doc =
    "In-memory row budget for the blocking operators (ORDER BY, unclustered \
     GROUP BY): past $(docv) rows, sorted runs spill to temp files and \
     merge back as a stream, so peak resident rows stay bounded. Results \
     are byte-identical to the unbounded sort; $(b,explain --analyze) shows \
     $(b,spill=) counters on operators that spilled. Defaults to unbounded \
     (or the $(b,ALDSP_SORT_BUDGET) environment variable when set)."
  in
  Arg.(
    value & opt (some int) None & info [ "sort-budget" ] ~docv:"ROWS" ~doc)

let query_arg =
  let doc = "The XQuery to process (a literal query string)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc)

let file_arg =
  let doc = "Path to a data service (.xds) file." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let run_cmd =
  let clients_arg =
    let doc =
      "Run the query from $(docv) concurrent client sessions against one \
       shared server. Every session's answer must be byte-identical; the \
       answer is printed once, followed by the server's admission-control \
       counters."
    in
    Arg.(value & opt int 1 & info [ "clients" ] ~docv:"N" ~doc)
  in
  let latency_arg =
    let doc =
      "Simulated per-roundtrip backend latency in milliseconds. With \
       concurrent clients a non-zero latency makes sessions genuinely \
       overlap, which is what gives work sharing something to coalesce."
    in
    Arg.(value & opt float 0. & info [ "latency" ] ~docv:"MS" ~doc)
  in
  let shared_mix_arg =
    let doc =
      "Switch on cross-session work sharing for the run: byte-identical \
       in-flight backend statements coalesce on a single execution and \
       near-simultaneous single-key probes merge into one batched \
       roundtrip. Answers are still checked byte-for-byte across clients; \
       the sharing counters (coalesced, merged, roundtrips saved) are \
       reported with the admission counters."
    in
    Arg.(value & flag & info [ "shared-mix" ] ~doc)
  in
  let output_arg =
    let doc =
      "Stream the result to $(docv) instead of printing it: the query \
       executes on a producer thread and serialized chunks are written as \
       tokens cross the bounded delivery queue, so the result is never \
       materialized in memory (the server-side redirect-to-file API). \
       Single-client only."
    in
    Arg.(
      value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let action customers sort_budget clients latency_ms shared_mix output query =
    let demo =
      make_demo ~db_latency:(latency_ms /. 1000.) ?sort_budget customers
    in
    let server = demo.Aldsp_demo.Demo.server in
    if shared_mix then Server.set_work_sharing server true;
    if clients <= 1 then
      match output with
      | Some path -> (
        let ses = Server.session server () in
        match Server.session_run_stream ses query with
        | Error e ->
          prerr_endline (Server.submit_error_to_string e);
          1
        | Ok stream -> (
          let oc = open_out_bin path in
          let result = Server.stream_serialize stream (output_string oc) in
          close_out oc;
          match result with
          | Ok () ->
            Printf.eprintf "-- streamed to %s (peak %d tokens buffered)\n"
              path
              (Server.stream_peak_buffered stream);
            0
          | Error e ->
            prerr_endline (Server.submit_error_to_string e);
            1))
      | None -> (
        match Server.run server query with
        | Ok items ->
          print_endline (Aldsp_xml.Item.serialize items);
          0
        | Error msg ->
          prerr_endline msg;
          1)
    else begin
      let results = Array.make clients (Error (Server.Failed "not run")) in
      let threads =
        List.init clients (fun i ->
            Thread.create
              (fun () ->
                let ses = Server.session server () in
                results.(i) <- Server.session_run ses query)
              ())
      in
      List.iter Thread.join threads;
      let adm = Server.admission_stats server in
      let report () =
        Printf.eprintf
          "-- %d clients: %d submitted, %d completed, %d rejected, %d \
           deadline aborts (peak %d active / %d queued)\n"
          clients adm.Server.ad_submitted adm.Server.ad_completed
          adm.Server.ad_rejected adm.Server.ad_deadline_aborts
          adm.Server.ad_peak_active adm.Server.ad_peak_queued;
        if shared_mix then begin
          let st = Server.stats server in
          Printf.eprintf
            "-- work sharing: %d coalesced, %d batch-merged, %d backend \
             roundtrips saved\n"
            st.Server.st_coalesced_hits st.Server.st_batch_merges
            st.Server.st_dedup_roundtrips_saved
        end
      in
      match results.(0) with
      | Error e ->
        prerr_endline (Server.submit_error_to_string e);
        report ();
        1
      | Ok items ->
        let expected = Aldsp_xml.Item.serialize items in
        let divergent = ref 0 in
        Array.iteri
          (fun i r ->
            if i > 0 then
              match r with
              | Ok items when Aldsp_xml.Item.serialize items = expected -> ()
              | Ok _ ->
                incr divergent;
                Printf.eprintf "client %d: answer diverged from client 0\n" i
              | Error e ->
                incr divergent;
                Printf.eprintf "client %d: %s\n" i
                  (Server.submit_error_to_string e))
          results;
        print_endline expected;
        report ();
        if !divergent = 0 then 0 else 1
    end
  in
  let doc = "compile and run an XQuery against the demo enterprise" in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const action $ customers_arg $ sort_budget_arg $ clients_arg
          $ latency_arg $ shared_mix_arg $ output_arg $ query_arg)

let explain_cmd =
  let analyze_arg =
    let doc =
      "Execute the plan before rendering (EXPLAIN ANALYZE): operator lines \
       carry real row counts, roundtrips and cache hits, and each pushed \
       region shows the backend's access-path plan. $(b,--analyze=false) \
       renders the static tree with zero counters."
    in
    Arg.(value & opt bool true & info [ "analyze" ] ~docv:"BOOL" ~doc)
  in
  let timings_arg =
    let doc =
      "Add per-operator wall-clock fields (non-deterministic output)."
    in
    Arg.(value & flag & info [ "timings" ] ~doc)
  in
  let action customers sort_budget analyze timings query =
    let demo = make_demo ?sort_budget customers in
    match Server.explain ~analyze ~timings demo.Aldsp_demo.Demo.server query with
    | Ok text ->
      print_string text;
      0
    | Error msg ->
      prerr_endline msg;
      1
  in
  let doc =
    "show the unified plan: middleware operators with runtime counters and \
     the SQL pushed to each source with its backend access path"
  in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(const action $ customers_arg $ sort_budget_arg $ analyze_arg
          $ timings_arg $ query_arg)

let check_cmd =
  let action customers file =
    let demo = make_demo customers in
    let source =
      let ic = open_in_bin file in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    let diags = Server.design_time_check demo.Aldsp_demo.Demo.server source in
    if diags = [] then begin
      print_endline "no problems found";
      0
    end
    else begin
      List.iter (fun d -> print_endline (Diag.to_string d)) diags;
      1
    end
  in
  let doc =
    "design-time check of a data service file: reports as many errors as \
     possible instead of stopping at the first"
  in
  Cmd.v (Cmd.info "check" ~doc) Term.(const action $ customers_arg $ file_arg)

let catalog_cmd =
  let action customers =
    let demo = make_demo customers in
    let registry = demo.Aldsp_demo.Demo.registry in
    print_endline "data services:";
    List.iter
      (fun ds ->
        Printf.printf "  %s%s\n" ds.Metadata.ds_name
          (match ds.Metadata.ds_lineage_provider with
          | Some p -> Printf.sprintf " (lineage: %s)" (Aldsp_xml.Qname.to_string p)
          | None -> "");
        List.iter
          (fun f -> Printf.printf "    - %s\n" (Aldsp_xml.Qname.to_string f))
          ds.Metadata.ds_functions)
      (Metadata.data_services registry);
    print_endline "functions:";
    List.iter
      (fun fd ->
        Printf.printf "  %s/%d : %s  [%s]\n"
          (Aldsp_xml.Qname.to_string fd.Metadata.fd_name)
          (List.length fd.Metadata.fd_params)
          (Stype.to_string fd.Metadata.fd_return)
          (match fd.Metadata.fd_kind with
          | Metadata.Read -> "read"
          | Metadata.Navigate -> "navigate"
          | Metadata.Library -> "library"))
      (Metadata.functions registry);
    0
  in
  let doc = "list the demo enterprise's data services and functions" in
  Cmd.v (Cmd.info "catalog" ~doc) Term.(const action $ customers_arg)

let describe_cmd =
  let action customers name =
    let demo = make_demo customers in
    match Design_view.render demo.Aldsp_demo.Demo.registry name with
    | Ok text ->
      print_string text;
      0
    | Error msg ->
      prerr_endline msg;
      1
  in
  let name_arg =
    let doc = "Data service name (see $(b,catalog))." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SERVICE" ~doc)
  in
  let doc = "render a data service's design view (shape, methods, dependencies)" in
  Cmd.v (Cmd.info "describe" ~doc)
    Term.(const action $ customers_arg $ name_arg)

let stats_cmd =
  let action customers sort_budget query =
    let demo = make_demo ?sort_budget customers in
    Aldsp_demo.Demo.reset_stats demo;
    (match Server.run demo.Aldsp_demo.Demo.server query with
    | Ok items -> Printf.printf "%d items returned\n" (List.length items)
    | Error msg -> prerr_endline msg);
    let open Aldsp_relational in
    let report (db : Database.t) =
      Printf.printf "%-12s %4d statements  %6d rows shipped  %4d params\n"
        db.Database.db_name db.Database.stats.Database.statements
        db.Database.stats.Database.rows_shipped
        db.Database.stats.Database.params_bound
    in
    report demo.Aldsp_demo.Demo.customer_db;
    report demo.Aldsp_demo.Demo.card_db;
    Printf.printf "%-12s %4d calls\n" "RatingWS"
      demo.Aldsp_demo.Demo.rating_service.Aldsp_services.Web_service.stats
        .Aldsp_services.Web_service.calls;
    print_endline "\nplanner statistics (maintained per table):";
    let table_stats (db : Database.t) =
      let latency, row_cost = Database.cost_profile db in
      Printf.printf "  %s (latency %.2f ms/roundtrip, %.1f us/row):\n"
        db.Database.db_name (latency *. 1000.) (row_cost *. 1_000_000.);
      List.iter
        (fun (name, st) ->
          Printf.printf "    %-14s %7d rows (v%d)\n" name st.Table.stat_rows
            st.Table.stat_version;
          List.iter
            (fun cs ->
              let bound = function
                | Some v -> Printf.sprintf "%g" v
                | None -> "-"
              in
              Printf.printf "      (%s)%s ndv=%d min=%s max=%s\n"
                (String.concat ", " cs.Table.cs_columns)
                (if cs.Table.cs_unique then " unique" else "")
                cs.Table.cs_distinct (bound cs.Table.cs_min)
                (bound cs.Table.cs_max))
            st.Table.stat_columns)
        (Database.table_statistics db)
    in
    table_stats demo.Aldsp_demo.Demo.customer_db;
    table_stats demo.Aldsp_demo.Demo.card_db;
    let sstats = Server.stats demo.Aldsp_demo.Demo.server in
    Printf.printf
      "misestimation: worst est-vs-actual ratio %.2fx across %d plan \
       compilation(s)\n"
      sstats.Server.st_max_misestimate sstats.Server.st_plan_cache_misses;
    Printf.printf
      "work sharing: %d coalesced, %d batch-merged, %d backend roundtrips \
       saved\n"
      sstats.Server.st_coalesced_hits sstats.Server.st_batch_merges
      sstats.Server.st_dedup_roundtrips_saved;
    if sstats.Server.st_spill_runs > 0 then
      Printf.printf
        "external sort: %d runs spilled (%d rows, %d bytes), peak %d rows \
         resident\n"
        sstats.Server.st_spill_runs sstats.Server.st_spill_rows
        sstats.Server.st_spill_bytes sstats.Server.st_spill_peak_resident;
    0
  in
  let doc =
    "run a query and report per-source roundtrips and rows, the planner's \
     per-table statistics, and the worst est-vs-actual cardinality ratio"
  in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(const action $ customers_arg $ sort_budget_arg $ query_arg)

let () =
  let doc = "query console for the data services platform" in
  let info = Cmd.info "aldsp" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ run_cmd; explain_cmd; check_cmd; catalog_cmd; describe_cmd;
            stats_cmd ]))
